// Cascade tests: full-correction property across the (n, qber) grid,
// leakage/efficiency envelope, permutation agreement, responder math.
#include "reconcile/cascade.hpp"

#include <gtest/gtest.h>

#include "common/entropy.hpp"
#include "common/rng.hpp"
#include "reconcile/parity_oracle.hpp"
#include "reconcile/reconciler.hpp"

namespace qkdpp::reconcile {
namespace {

/// Flip each bit of `key` with probability q, returning the corrupted copy.
BitVec corrupt(const BitVec& key, double q, Xoshiro256& rng) {
  BitVec noisy = key;
  for (std::size_t i = 0; i < key.size(); ++i) {
    if (rng.bernoulli(q)) noisy.flip(i);
  }
  return noisy;
}

TEST(CascadePermutation, PassZeroIsIdentity) {
  const auto perm = cascade_permutation(100, 42, 0);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(perm[i], i);
}

TEST(CascadePermutation, DeterministicAndPassDependent) {
  const auto a = cascade_permutation(1000, 7, 1);
  const auto b = cascade_permutation(1000, 7, 1);
  const auto c = cascade_permutation(1000, 7, 2);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(CascadeResponder, RangeParitiesMatchDirectComputation) {
  Xoshiro256 rng(1);
  const BitVec key = rng.random_bits(517);
  const CascadeResponder responder(key, 99, 3);
  for (std::uint32_t pass = 0; pass < 3; ++pass) {
    const auto perm = cascade_permutation(517, 99, pass);
    const std::vector<ParityRange> ranges = {
        {0, 1}, {0, 517}, {100, 200}, {516, 517}, {7, 7}};
    const BitVec got = responder.parities(pass, ranges);
    for (std::size_t i = 0; i < ranges.size(); ++i) {
      bool expected = false;
      for (std::uint32_t j = ranges[i].begin; j < ranges[i].end; ++j) {
        expected ^= key.get(perm[j]);
      }
      EXPECT_EQ(got.get(i), expected) << "pass " << pass << " range " << i;
    }
  }
}

TEST(CascadeBlockSize, RuleOfThumb) {
  EXPECT_EQ(cascade_block_size(0.01, 1u << 14), 73u);
  EXPECT_EQ(cascade_block_size(0.05, 1u << 14), 15u);
  EXPECT_EQ(cascade_block_size(0.5, 1u << 14), 2u);   // clamped below
  EXPECT_EQ(cascade_block_size(0.0, 1u << 14), 1u << 14);  // clamped above
}

TEST(Cascade, CorrectsSingleError) {
  Xoshiro256 rng(2);
  const BitVec alice = rng.random_bits(1024);
  BitVec bob = alice;
  bob.flip(500);
  CascadeConfig config;
  config.qber_hint = 0.01;
  config.seed = 5;
  LocalParityOracle oracle(alice, config.seed, config.passes);
  const auto result = cascade_reconcile(bob, oracle, config);
  EXPECT_EQ(bob, alice);
  EXPECT_EQ(result.corrected_bits, 1u);
}

TEST(Cascade, NoErrorsMeansNoCorrections) {
  Xoshiro256 rng(3);
  const BitVec alice = rng.random_bits(4096);
  BitVec bob = alice;
  CascadeConfig config;
  config.qber_hint = 0.02;
  config.seed = 6;
  LocalParityOracle oracle(alice, config.seed, config.passes);
  const auto result = cascade_reconcile(bob, oracle, config);
  EXPECT_EQ(bob, alice);
  EXPECT_EQ(result.corrected_bits, 0u);
  // Leakage is just the per-pass block parities.
  EXPECT_EQ(result.rounds, config.passes);
}

TEST(Cascade, AdversarialBurstErrors) {
  Xoshiro256 rng(4);
  const BitVec alice = rng.random_bits(8192);
  BitVec bob = alice;
  for (std::size_t i = 4000; i < 4064; ++i) bob.flip(i);  // 64-bit burst
  CascadeConfig config;
  config.qber_hint = 64.0 / 8192;
  config.seed = 7;
  config.passes = 6;
  LocalParityOracle oracle(alice, config.seed, config.passes);
  cascade_reconcile(bob, oracle, config);
  EXPECT_EQ(bob, alice);
}

struct CascadeCase {
  std::size_t n;
  double qber;
};

class CascadeSweep : public ::testing::TestWithParam<CascadeCase> {};

TEST_P(CascadeSweep, FullyCorrects) {
  const auto [n, q] = GetParam();
  Xoshiro256 rng(n * 131 + static_cast<std::uint64_t>(q * 10000));
  const BitVec alice = rng.random_bits(n);
  BitVec bob = corrupt(alice, q, rng);

  CascadeConfig config;
  config.qber_hint = q;
  config.seed = 17;
  config.passes = 6;  // generous pass count -> residual FER negligible
  LocalParityOracle oracle(alice, config.seed, config.passes);
  const auto result = cascade_reconcile(bob, oracle, config);
  EXPECT_EQ(bob, alice) << "n=" << n << " q=" << q;
  EXPECT_GT(result.leaked_bits, 0u);
}

TEST_P(CascadeSweep, EfficiencyEnvelope) {
  const auto [n, q] = GetParam();
  if (n < 4096) GTEST_SKIP() << "efficiency only meaningful at scale";
  Xoshiro256 rng(n * 177 + static_cast<std::uint64_t>(q * 10000) + 5);
  const BitVec alice = rng.random_bits(n);
  BitVec bob = corrupt(alice, q, rng);

  CascadeConfig config;
  config.qber_hint = q;
  config.seed = 18;
  config.passes = 6;
  LocalParityOracle oracle(alice, config.seed, config.passes);
  const auto result = cascade_reconcile(bob, oracle, config);
  ASSERT_EQ(bob, alice);
  const double f = result.efficiency(n, q);
  // Above the Shannon limit, below a loose production ceiling.
  EXPECT_GT(f, 1.0) << "q=" << q;
  EXPECT_LT(f, 2.0) << "q=" << q;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CascadeSweep,
    ::testing::Values(CascadeCase{256, 0.02}, CascadeCase{1024, 0.005},
                      CascadeCase{1024, 0.03}, CascadeCase{4096, 0.01},
                      CascadeCase{4096, 0.05}, CascadeCase{16384, 0.02},
                      CascadeCase{16384, 0.08}, CascadeCase{65536, 0.03},
                      CascadeCase{65536, 0.11}));

TEST(Cascade, LeakageScalesWithQber) {
  Xoshiro256 rng(20);
  const std::size_t n = 16384;
  const BitVec alice = rng.random_bits(n);
  std::uint64_t previous_leak = 0;
  for (const double q : {0.01, 0.03, 0.06}) {
    BitVec bob = corrupt(alice, q, rng);
    CascadeConfig config;
    config.qber_hint = q;
    config.seed = 21;
    config.passes = 6;
    LocalParityOracle oracle(alice, config.seed, config.passes);
    const auto result = cascade_reconcile(bob, oracle, config);
    ASSERT_EQ(bob, alice);
    EXPECT_GT(result.leaked_bits, previous_leak);
    previous_leak = result.leaked_bits;
  }
}

TEST(Cascade, OracleAndEngineAgreeOnAccounting) {
  Xoshiro256 rng(22);
  const std::size_t n = 8192;
  const BitVec alice = rng.random_bits(n);
  BitVec bob = corrupt(alice, 0.03, rng);
  CascadeConfig config;
  config.qber_hint = 0.03;
  config.seed = 23;
  LocalParityOracle oracle(alice, config.seed, config.passes);
  const auto result = cascade_reconcile(bob, oracle, config);
  EXPECT_EQ(result.leaked_bits, oracle.bits_leaked());
  EXPECT_EQ(result.rounds, oracle.rounds());
}

TEST(Cascade, WrongSeedDesynchronizesHarmlessly) {
  // A mismatched permutation seed must not crash; it just fails to correct
  // (verification would catch it in the pipeline).
  Xoshiro256 rng(24);
  const BitVec alice = rng.random_bits(2048);
  BitVec bob = corrupt(alice, 0.02, rng);
  CascadeConfig config;
  config.qber_hint = 0.02;
  config.seed = 100;
  config.max_rounds = 2000;  // desync never converges; cap terminates it
  LocalParityOracle oracle(alice, /*seed=*/200, config.passes);  // wrong seed
  CascadeResult result;
  EXPECT_NO_THROW(result = cascade_reconcile(bob, oracle, config));
  EXPECT_FALSE(result.converged);
}

TEST(Cascade, ConvergedFlagReportsRoundExhaustion) {
  // Regression: hitting max_rounds used to return with odd blocks still
  // unresolved and no way for the caller to tell the run from a clean one.
  Xoshiro256 rng(25);
  const std::size_t n = 4096;
  const BitVec alice = rng.random_bits(n);
  BitVec bob = corrupt(alice, 0.05, rng);
  CascadeConfig config;
  config.qber_hint = 0.05;
  config.seed = 26;
  config.passes = 6;
  config.max_rounds = 8;  // nowhere near enough for ~200 errors
  LocalParityOracle oracle(alice, config.seed, config.passes);
  const auto result = cascade_reconcile(bob, oracle, config);
  EXPECT_FALSE(result.converged);
  EXPECT_NE(bob, alice);
  // Cap checked per batch; one in-flight bisection may overshoot slightly.
  EXPECT_LE(result.rounds, config.max_rounds + 32);

  // The same run with the full budget converges and says so.
  BitVec bob_again = corrupt(alice, 0.05, rng);
  CascadeConfig generous = config;
  generous.max_rounds = 100000;
  LocalParityOracle fresh(alice, generous.seed, generous.passes);
  const auto ok = cascade_reconcile(bob_again, fresh, generous);
  EXPECT_TRUE(ok.converged);
  EXPECT_EQ(bob_again, alice);
}

TEST(Cascade, NonConvergenceFailsLocalReconcileOutcome) {
  // The reconciler wrapper must surface non-convergence as failure so the
  // engine's reconcile stage can route the block into its failure path
  // instead of leaking a verification tag on a lost cause.
  Xoshiro256 rng(27);
  const BitVec alice = rng.random_bits(4096);
  BitVec bob = corrupt(alice, 0.05, rng);
  CascadeConfig config;
  config.qber_hint = 0.05;
  config.seed = 28;
  config.max_rounds = 8;
  const auto failed = reconcile::cascade_reconcile_local(alice, bob, 0.05,
                                                         config);
  EXPECT_FALSE(failed.success);

  config.max_rounds = 100000;
  const auto ok = reconcile::cascade_reconcile_local(alice, bob, 0.05, config);
  EXPECT_TRUE(ok.success);
  EXPECT_EQ(ok.corrected, alice);
}

TEST(Cascade, ThrowsOnEmptyKey) {
  BitVec alice(64), bob;
  CascadeConfig config;
  LocalParityOracle oracle(alice, 0, config.passes);
  EXPECT_THROW(cascade_reconcile(bob, oracle, config),
               std::invalid_argument);
}

}  // namespace
}  // namespace qkdpp::reconcile
