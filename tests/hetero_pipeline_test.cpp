// StreamPipeline + mapper tests: ordering, backpressure, failure
// propagation, stats; mapping optimality against brute-force expectations.
#include "hetero/mapper.hpp"
#include "hetero/stream_pipeline.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "common/error.hpp"

namespace qkdpp::hetero {
namespace {

struct Item {
  int id = 0;
  int tag = 0;
};

TEST(StreamPipeline, PreservesOrderAndAppliesAllStages) {
  StreamPipeline<Item> pipeline(
      {{"double", nullptr,
        [](Item& item) {
          item.tag = item.id * 2;
          return 0.0;
        }},
       {"inc", nullptr,
        [](Item& item) {
          item.tag += 1;
          return 0.0;
        }}},
      4);
  for (int i = 0; i < 100; ++i) pipeline.push({i, 0});
  pipeline.finish();
  const auto& out = pipeline.results();
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(out[i].id, i);  // order preserved
    EXPECT_EQ(out[i].tag, i * 2 + 1);
  }
}

TEST(StreamPipeline, StatsCountItems) {
  StreamPipeline<Item> pipeline(
      {{"a", nullptr, [](Item&) { return 0.5; }},
       {"b", nullptr, [](Item&) { return 0.25; }}},
      2);
  for (int i = 0; i < 10; ++i) pipeline.push({i, 0});
  pipeline.finish();
  const auto stats = pipeline.stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].items, 10u);
  EXPECT_EQ(stats[1].items, 10u);
  EXPECT_NEAR(stats[0].charged_seconds, 5.0, 1e-9);
  EXPECT_NEAR(stats[1].charged_seconds, 2.5, 1e-9);
  EXPECT_EQ(stats[0].name, "a");
}

TEST(StreamPipeline, BackpressureBoundsQueueDepth) {
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  StreamPipeline<Item> pipeline(
      {{"slow", nullptr,
        [&](Item&) {
          const int now = ++in_flight;
          int expected = max_in_flight.load();
          while (now > expected &&
                 !max_in_flight.compare_exchange_weak(expected, now)) {
          }
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          --in_flight;
          return 0.0;
        }}},
      2);
  for (int i = 0; i < 50; ++i) pipeline.push({i, 0});
  pipeline.finish();
  ASSERT_EQ(pipeline.results().size(), 50u);
  EXPECT_LE(max_in_flight.load(), 2);  // single worker per stage
}

TEST(StreamPipeline, StageExceptionSurfacesOnFinish) {
  StreamPipeline<Item> pipeline(
      {{"boom", nullptr, [](Item& item) -> double {
          if (item.id == 3) throw_error(ErrorCode::kDecodeFailure, "kaboom");
          return 0.0;
        }}},
      2);
  // The failure may surface either from a later push (backpressure path)
  // or from finish(); both carry the original error code.
  try {
    for (int i = 0; i < 8; ++i) pipeline.push({i, 0});
    pipeline.finish();
    FAIL() << "expected decode failure";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDecodeFailure);
  }
}

TEST(StreamPipeline, DestructionWithoutFinishDoesNotHang) {
  auto pipeline = std::make_unique<StreamPipeline<Item>>(
      std::vector<StreamPipeline<Item>::Stage>{
          {"noop", nullptr, [](Item&) { return 0.0; }}},
      2);
  pipeline->push({1, 0});
  pipeline.reset();  // must join cleanly
  SUCCEED();
}

TEST(StreamPipeline, EmptyStreamFinishes) {
  StreamPipeline<Item> pipeline(
      {{"noop", nullptr, [](Item&) { return 0.0; }}}, 2);
  pipeline.finish();
  EXPECT_TRUE(pipeline.results().empty());
}

TEST(StreamPipeline, InvalidConstructionThrows) {
  EXPECT_THROW(StreamPipeline<Item>({}, 2), std::invalid_argument);
  EXPECT_THROW(StreamPipeline<Item>(
                   {{"x", nullptr, [](Item&) { return 0.0; }}}, 0),
               std::invalid_argument);
}

MappingProblem three_by_three() {
  MappingProblem problem;
  problem.stage_names = {"s0", "s1", "s2"};
  problem.device_names = {"d0", "d1", "d2"};
  problem.seconds_per_item = {
      {1.0, 4.0, 9.0},
      {2.0, 1.0, 8.0},
      {9.0, 9.0, 1.0},
  };
  return problem;
}

TEST(Mapper, FindsDiagonalOptimum) {
  const auto result = optimize_mapping(three_by_three());
  EXPECT_EQ(result.device_of_stage,
            (std::vector<std::uint32_t>{0, 1, 2}));
  // Diagonal placement: every device carries exactly one unit of load.
  EXPECT_NEAR(result.bottleneck_load_s, 1.0, 1e-12);
  EXPECT_NEAR(result.throughput_items_per_s, 1.0, 1e-12);
}

TEST(Mapper, SharingModelSumsLoads) {
  MappingProblem problem;
  problem.stage_names = {"a", "b"};
  problem.device_names = {"fast", "slow"};
  // Both stages are individually fastest on "fast", but sharing it (load
  // 2.0) loses to splitting (bottleneck 1.5).
  problem.seconds_per_item = {{1.0, 1.5}, {1.0, 1.5}};
  const auto greedy = greedy_mapping(problem);
  EXPECT_EQ(greedy.device_of_stage, (std::vector<std::uint32_t>{0, 0}));
  EXPECT_NEAR(greedy.bottleneck_load_s, 2.0, 1e-12);

  const auto best = optimize_mapping(problem);
  EXPECT_NEAR(best.bottleneck_load_s, 1.5, 1e-12);
  EXPECT_NE(best.device_of_stage[0], best.device_of_stage[1]);
}

TEST(Mapper, OptimumNeverWorseThanBaselines) {
  const auto problem = three_by_three();
  const auto best = optimize_mapping(problem);
  for (std::uint32_t d = 0; d < 3; ++d) {
    EXPECT_LE(best.bottleneck_load_s,
              fixed_mapping(problem, d).bottleneck_load_s + 1e-12);
  }
  EXPECT_LE(best.bottleneck_load_s,
            greedy_mapping(problem).bottleneck_load_s + 1e-12);
}

TEST(Mapper, RespectsInfeasibleCells) {
  MappingProblem problem;
  problem.stage_names = {"a", "b"};
  problem.device_names = {"d0", "d1"};
  problem.seconds_per_item = {{kInfeasible, 2.0}, {1.0, 1.0}};
  const auto best = optimize_mapping(problem);
  EXPECT_EQ(best.device_of_stage[0], 1u);
}

TEST(Mapper, AllInfeasibleStageRejected) {
  MappingProblem problem;
  problem.stage_names = {"a"};
  problem.device_names = {"d0"};
  problem.seconds_per_item = {{kInfeasible}};
  EXPECT_THROW(optimize_mapping(problem), Error);
}

TEST(Mapper, ShapeErrorsRejected) {
  MappingProblem problem;
  problem.stage_names = {"a", "b"};
  problem.device_names = {"d0"};
  problem.seconds_per_item = {{1.0}};  // missing a row
  EXPECT_THROW(optimize_mapping(problem), Error);
  EXPECT_THROW(evaluate_mapping(three_by_three(), {0, 1}), Error);
  EXPECT_THROW(evaluate_mapping(three_by_three(), {0, 1, 9}), Error);
  EXPECT_THROW(fixed_mapping(three_by_three(), 9), Error);
}

TEST(Mapper, EvaluateReportsBottleneckDevice) {
  const auto result = evaluate_mapping(three_by_three(), {0, 0, 2});
  EXPECT_NEAR(result.bottleneck_load_s, 3.0, 1e-12);  // d0: 1.0 + 2.0
  EXPECT_EQ(result.bottleneck_device, 0u);
}

TEST(Mapper, SixStagesFourDevicesTractable) {
  // The real pipeline size: 4^6 = 4096 assignments, must be instant.
  MappingProblem problem;
  problem.stage_names = {"sift", "pe", "recon", "verify", "pa", "auth"};
  problem.device_names = {"cpu", "cpu-par", "gpu", "fpga"};
  problem.seconds_per_item.assign(6, std::vector<double>(4, 1.0));
  problem.seconds_per_item[2] = {8.0, 3.0, 0.5, 1.0};  // recon loves gpu
  problem.seconds_per_item[4] = {4.0, 2.0, 0.6, 2.0};  // pa too
  const auto best = optimize_mapping(problem);
  EXPECT_GT(best.throughput_items_per_s, 0.0);
  // recon and pa should not both sit on the gpu with everything else
  // unless that is actually optimal - just assert optimality vs greedy.
  EXPECT_LE(best.bottleneck_load_s,
            greedy_mapping(problem).bottleneck_load_s + 1e-12);
}

}  // namespace
}  // namespace qkdpp::hetero
