// Entropy helper tests: exact values, symmetry, inverse, bounds.
#include "common/entropy.hpp"

#include <gtest/gtest.h>

namespace qkdpp {
namespace {

TEST(Entropy, EndpointsAndMax) {
  EXPECT_DOUBLE_EQ(binary_entropy(0.0), 0.0);
  EXPECT_DOUBLE_EQ(binary_entropy(1.0), 0.0);
  EXPECT_DOUBLE_EQ(binary_entropy(0.5), 1.0);
  EXPECT_DOUBLE_EQ(binary_entropy(-0.1), 0.0);
  EXPECT_DOUBLE_EQ(binary_entropy(1.1), 0.0);
}

TEST(Entropy, KnownValues) {
  EXPECT_NEAR(binary_entropy(0.11), 0.499916, 1e-5);  // BB84 threshold
  EXPECT_NEAR(binary_entropy(0.25), 0.811278, 1e-5);
  EXPECT_NEAR(binary_entropy(0.02), 0.141441, 1e-5);
}

TEST(Entropy, Symmetry) {
  for (double p = 0.01; p < 0.5; p += 0.017) {
    EXPECT_NEAR(binary_entropy(p), binary_entropy(1.0 - p), 1e-12);
  }
}

TEST(Entropy, StrictlyIncreasingOnLowerHalf) {
  double prev = 0.0;
  for (double p = 0.01; p <= 0.5; p += 0.01) {
    const double h = binary_entropy(p);
    EXPECT_GT(h, prev);
    prev = h;
  }
}

TEST(Entropy, InverseRoundTrip) {
  for (double p = 0.001; p <= 0.5; p += 0.013) {
    const double h = binary_entropy(p);
    EXPECT_NEAR(binary_entropy_inverse(h), p, 1e-9) << p;
  }
  EXPECT_DOUBLE_EQ(binary_entropy_inverse(0.0), 0.0);
  EXPECT_DOUBLE_EQ(binary_entropy_inverse(1.0), 0.5);
  EXPECT_DOUBLE_EQ(binary_entropy_inverse(2.0), 0.5);
}

TEST(Entropy, HoeffdingDeltaShrinksWithN) {
  const double eps = 1e-10;
  double prev = 1.0;
  for (const std::size_t n : {100u, 1000u, 10000u, 100000u}) {
    const double d = hoeffding_delta(n, eps);
    EXPECT_LT(d, prev);
    EXPECT_GT(d, 0.0);
    prev = d;
  }
  EXPECT_DOUBLE_EQ(hoeffding_delta(0, eps), 1.0);
}

TEST(Entropy, HoeffdingKnownValue) {
  // sqrt(ln(1e10)/(2*10^4)) = sqrt(23.0259.../20000)
  EXPECT_NEAR(hoeffding_delta(10000, 1e-10), 0.033930, 1e-5);
}

TEST(Entropy, SamplingCorrectionShrinksWithTestFraction) {
  const double eps = 1e-10;
  const double d1 = sampling_correction(100000, 1000, eps);
  const double d2 = sampling_correction(100000, 10000, eps);
  const double d3 = sampling_correction(100000, 50000, eps);
  EXPECT_GT(d1, d2);
  EXPECT_GT(d2, d3);
  EXPECT_GT(d3, 0.0);
}

TEST(Entropy, SamplingCorrectionDegenerateInputs) {
  EXPECT_DOUBLE_EQ(sampling_correction(0, 100, 1e-10), 0.5);
  EXPECT_DOUBLE_EQ(sampling_correction(100, 0, 1e-10), 0.5);
}

}  // namespace
}  // namespace qkdpp
