// Two-party session integration tests: Alice and Bob on separate threads
// over the in-process channel (raw and Wegman-Carter authenticated),
// producing identical keys; adversarial paths abort cleanly on both ends.
#include "pipeline/session.hpp"

#include <gtest/gtest.h>

#include <future>
#include <thread>

#include "common/error.hpp"
#include "protocol/auth_channel.hpp"
#include "sim/bb84.hpp"

namespace qkdpp::pipeline {
namespace {

struct LinkData {
  protocol::AliceTransmitLog alice_log;
  BobDetections bob;
};

LinkData simulate_link(double km, std::uint64_t seed, std::size_t pulses,
                       double intercept = 0.0) {
  sim::LinkConfig link;
  link.channel.length_km = km;
  link.eve.intercept_fraction = intercept;
  Xoshiro256 rng(seed);
  const auto record = sim::Bb84Simulator(link).run(pulses, rng);
  LinkData data;
  data.alice_log = {record.alice_bits, record.alice_bases,
                    record.alice_class};
  data.bob.block_id = 1;
  data.bob.n_pulses = record.n_pulses;
  data.bob.detected_idx = record.detected_idx;
  data.bob.bits = record.bob_bits;
  data.bob.bases = record.bob_bases;
  return data;
}

std::pair<SessionResult, SessionResult> run_session(
    const LinkData& data, const SessionConfig& config,
    protocol::ClassicalChannel& alice_channel,
    protocol::ClassicalChannel& bob_channel, std::uint64_t alice_seed = 777) {
  auto alice_future = std::async(std::launch::async, [&] {
    Xoshiro256 rng(alice_seed);
    return run_alice_session(alice_channel, data.alice_log, 1, config, rng);
  });
  const SessionResult bob = run_bob_session(bob_channel, data.bob, config);
  const SessionResult alice = alice_future.get();
  return {alice, bob};
}

SessionConfig metro_session_config() {
  SessionConfig config;
  config.ldpc.min_frame = 4096;
  return config;
}

TEST(Session, LdpcProducesIdenticalKeys) {
  const auto data = simulate_link(25.0, 100, 1 << 20);
  auto [alice_channel, bob_channel] = protocol::make_channel_pair();
  const auto [alice, bob] = run_session(data, metro_session_config(),
                                        *alice_channel, *bob_channel);
  ASSERT_TRUE(alice.success) << alice.abort_reason;
  ASSERT_TRUE(bob.success) << bob.abort_reason;
  EXPECT_FALSE(alice.final_key.empty());
  EXPECT_EQ(alice.final_key, bob.final_key);
  EXPECT_EQ(alice.key_id, bob.key_id);
  EXPECT_EQ(alice.leak_ec_bits, bob.leak_ec_bits);
  EXPECT_EQ(alice.reconciled_bits, bob.reconciled_bits);
  EXPECT_DOUBLE_EQ(alice.qber_estimate, bob.qber_estimate);
}

TEST(Session, CascadeProducesIdenticalKeys) {
  const auto data = simulate_link(25.0, 101, 1 << 20);
  SessionConfig config = metro_session_config();
  config.method = protocol::ReconcileMethod::kCascade;
  auto [alice_channel, bob_channel] = protocol::make_channel_pair();
  const auto [alice, bob] =
      run_session(data, config, *alice_channel, *bob_channel);
  ASSERT_TRUE(alice.success) << alice.abort_reason;
  ASSERT_TRUE(bob.success) << bob.abort_reason;
  EXPECT_EQ(alice.final_key, bob.final_key);
  EXPECT_EQ(alice.leak_ec_bits, bob.leak_ec_bits);
  // Cascade's leakage stays under LDPC-typical levels on clean channels but
  // costs many round-trips.
  EXPECT_GT(alice.channel.messages_received, 20u);
}

TEST(Session, AuthenticatedChannelEndToEnd) {
  const auto data = simulate_link(25.0, 102, 1 << 20);
  Xoshiro256 pool_rng(55);
  const BitVec a2b = pool_rng.random_bits(auth::kTagKeyBits * 4096);
  const BitVec b2a = pool_rng.random_bits(auth::kTagKeyBits * 4096);
  auth::KeyPool alice_send(a2b), alice_recv(b2a);
  auth::KeyPool bob_send(b2a), bob_recv(a2b);

  auto [raw_alice, raw_bob] = protocol::make_channel_pair();
  protocol::AuthenticatedChannel alice_channel(std::move(raw_alice),
                                               alice_send, alice_recv);
  protocol::AuthenticatedChannel bob_channel(std::move(raw_bob), bob_send,
                                             bob_recv);
  const auto [alice, bob] = run_session(data, metro_session_config(),
                                        alice_channel, bob_channel);
  ASSERT_TRUE(alice.success) << alice.abort_reason;
  ASSERT_TRUE(bob.success) << bob.abort_reason;
  EXPECT_EQ(alice.final_key, bob.final_key);
  // Authentication must have consumed key on both sides, in sync.
  EXPECT_GT(alice_send.total_consumed(), 0u);
  EXPECT_EQ(alice_send.total_consumed(), bob_recv.total_consumed());
  EXPECT_EQ(bob_send.total_consumed(), alice_recv.total_consumed());
}

TEST(Session, InterceptResendAbortsBothSides) {
  const auto data = simulate_link(10.0, 103, 1 << 18, /*intercept=*/1.0);
  auto [alice_channel, bob_channel] = protocol::make_channel_pair();
  const auto [alice, bob] = run_session(data, metro_session_config(),
                                        *alice_channel, *bob_channel);
  EXPECT_FALSE(alice.success);
  EXPECT_FALSE(bob.success);
  EXPECT_EQ(alice.abort_reason, "qber above abort threshold");
  EXPECT_EQ(bob.abort_reason, "qber above abort threshold");
  EXPECT_TRUE(alice.final_key.empty());
  EXPECT_TRUE(bob.final_key.empty());
}

TEST(Session, TamperedChannelDetectedByAuthentication) {
  const auto data = simulate_link(25.0, 104, 1 << 18);
  Xoshiro256 pool_rng(56);
  const BitVec a2b = pool_rng.random_bits(auth::kTagKeyBits * 1024);
  const BitVec b2a = pool_rng.random_bits(auth::kTagKeyBits * 1024);
  auth::KeyPool alice_send(a2b), alice_recv(b2a);
  auth::KeyPool bob_send(b2a), bob_recv(a2b);

  auto [raw_alice, raw_bob] = protocol::make_channel_pair();
  // Adversary flips a bit in every 3rd frame Alice sends.
  auto tampered = protocol::make_tampering_channel(std::move(raw_alice), 3);
  protocol::AuthenticatedChannel alice_channel(std::move(tampered),
                                               alice_send, alice_recv);
  protocol::AuthenticatedChannel bob_channel(std::move(raw_bob), bob_send,
                                             bob_recv);

  auto alice_future = std::async(std::launch::async, [&] {
    Xoshiro256 rng(777);
    auto r = run_alice_session(alice_channel, data.alice_log, 1,
                               metro_session_config(), rng);
    alice_channel.close();
    return r;
  });
  const auto bob =
      run_bob_session(bob_channel, data.bob, metro_session_config());
  bob_channel.close();
  const auto alice = alice_future.get();

  // Bob rejects the tampered frame with a *typed* abort, not an unwind.
  EXPECT_FALSE(bob.success);
  ASSERT_TRUE(bob.fault_code.has_value());
  EXPECT_EQ(*bob.fault_code, ErrorCode::kAuthentication);
  // Bob's Abort notification reaches Alice, so she aborts too instead of
  // hanging; neither side holds key material.
  EXPECT_FALSE(alice.success);
  EXPECT_TRUE(alice.final_key.empty());
  EXPECT_TRUE(bob.final_key.empty());

  // One-time-pad discipline: every frame Bob verified — including the
  // tampered one that failed — consumed exactly one tag's worth of key.
  // A failed verify must not refund its bits (that would reuse a one-time
  // key), and Alice's sign pool must track her sent frames the same way.
  EXPECT_GT(bob_recv.total_consumed(), 0u);
  EXPECT_EQ(bob_recv.total_consumed(),
            bob.channel.messages_received * auth::kTagKeyBits);
  // Send pools may run one tag ahead of the wire: signing consumes key
  // even when the transmit then fails on a closed peer (never refunded).
  EXPECT_GE(alice_send.total_consumed(),
            alice.channel.messages_sent * auth::kTagKeyBits);
  EXPECT_GE(bob_send.total_consumed(),
            bob.channel.messages_sent * auth::kTagKeyBits);
}

TEST(Session, ShortBlockAbortsGracefully) {
  const auto data = simulate_link(25.0, 105, 2000);  // ~40 detections
  auto [alice_channel, bob_channel] = protocol::make_channel_pair();
  const auto [alice, bob] = run_session(data, metro_session_config(),
                                        *alice_channel, *bob_channel);
  EXPECT_FALSE(alice.success);
  EXPECT_FALSE(bob.success);
  EXPECT_FALSE(alice.abort_reason.empty());
  EXPECT_FALSE(bob.abort_reason.empty());
}

TEST(Session, ChannelAccountingConsistent) {
  const auto data = simulate_link(25.0, 106, 1 << 19);
  auto [alice_channel, bob_channel] = protocol::make_channel_pair();
  const auto [alice, bob] = run_session(data, metro_session_config(),
                                        *alice_channel, *bob_channel);
  ASSERT_TRUE(alice.success);
  EXPECT_EQ(alice.channel.messages_sent, bob.channel.messages_received);
  EXPECT_EQ(bob.channel.messages_sent, alice.channel.messages_received);
  EXPECT_EQ(alice.channel.bytes_sent, bob.channel.bytes_received);
}

TEST(Session, LatencyModelAccumulatesVirtualTime) {
  const auto data = simulate_link(25.0, 107, 1 << 19);
  protocol::ChannelModel model;
  model.latency_s = 0.001;
  auto [alice_channel, bob_channel] = protocol::make_channel_pair(model);
  const auto [alice, bob] = run_session(data, metro_session_config(),
                                        *alice_channel, *bob_channel);
  ASSERT_TRUE(alice.success);
  EXPECT_GT(alice.channel.virtual_time_s, 0.0);
  // Each one-way message charges at least the latency.
  EXPECT_GE(alice.channel.virtual_time_s,
            0.001 * static_cast<double>(alice.channel.messages_sent));
}

TEST(Session, DifferentAliceSeedsGiveDifferentKeys) {
  const auto data = simulate_link(25.0, 108, 1 << 19);
  SessionConfig config = metro_session_config();
  auto [c1a, c1b] = protocol::make_channel_pair();
  const auto [alice1, bob1] = run_session(data, config, *c1a, *c1b, 1);
  auto [c2a, c2b] = protocol::make_channel_pair();
  const auto [alice2, bob2] = run_session(data, config, *c2a, *c2b, 2);
  ASSERT_TRUE(alice1.success) << alice1.abort_reason;
  ASSERT_TRUE(alice2.success) << alice2.abort_reason;
  // Same raw data, different sampling/seeds -> different final keys.
  EXPECT_NE(alice1.final_key, alice2.final_key);
}

}  // namespace
}  // namespace qkdpp::pipeline
