// Message round-trip serialization and adversarial decode tests.
#include "protocol/messages.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace qkdpp::protocol {
namespace {

template <typename T>
T round_trip(const T& in) {
  const auto bytes = encode_message(Message{in});
  const Message out = decode_message(bytes);
  return std::get<T>(out);
}

TEST(Messages, DetectionReportRoundTrip) {
  Xoshiro256 rng(1);
  DetectionReport m;
  m.block_id = 7;
  m.n_pulses = 100000;
  m.detected_idx = {1, 5, 9, 70000};
  m.bob_bases = rng.random_bits(4);
  const auto out = round_trip(m);
  EXPECT_EQ(out.block_id, 7u);
  EXPECT_EQ(out.n_pulses, 100000u);
  EXPECT_EQ(out.detected_idx, m.detected_idx);
  EXPECT_EQ(out.bob_bases, m.bob_bases);
}

TEST(Messages, SiftResultRoundTrip) {
  Xoshiro256 rng(2);
  SiftResult m;
  m.block_id = 3;
  m.keep_mask = rng.random_bits(100);
  m.signal_mask = rng.random_bits(47);
  const auto out = round_trip(m);
  EXPECT_EQ(out.keep_mask, m.keep_mask);
  EXPECT_EQ(out.signal_mask, m.signal_mask);
}

TEST(Messages, PeMessagesRoundTrip) {
  Xoshiro256 rng(3);
  PeReveal reveal;
  reveal.block_id = 4;
  reveal.positions = {2, 4, 8};
  reveal.alice_bits = rng.random_bits(3);
  EXPECT_EQ(round_trip(reveal).positions, reveal.positions);

  PeReport report;
  report.block_id = 4;
  report.bob_bits = rng.random_bits(3);
  EXPECT_EQ(round_trip(report).bob_bits, report.bob_bits);

  PeVerdict verdict;
  verdict.block_id = 4;
  verdict.proceed = true;
  verdict.qber_estimate = 0.021;
  verdict.qber_upper = 0.034;
  const auto v = round_trip(verdict);
  EXPECT_TRUE(v.proceed);
  EXPECT_DOUBLE_EQ(v.qber_estimate, 0.021);
  EXPECT_DOUBLE_EQ(v.qber_upper, 0.034);
}

TEST(Messages, ReconcileStartRoundTrip) {
  Xoshiro256 rng(4);
  ReconcileStart m;
  m.block_id = 11;
  m.method = ReconcileMethod::kLdpc;
  m.perm_seed = 0xdeadbeefcafef00dULL;
  m.code_id = 3;
  m.n_punctured = 100;
  m.n_shortened = 50;
  m.qber_hint = 0.025;
  m.syndrome = rng.random_bits(8192);
  const auto out = round_trip(m);
  EXPECT_EQ(out.method, ReconcileMethod::kLdpc);
  EXPECT_EQ(out.perm_seed, m.perm_seed);
  EXPECT_EQ(out.code_id, 3u);
  EXPECT_EQ(out.n_punctured, 100u);
  EXPECT_EQ(out.n_shortened, 50u);
  EXPECT_DOUBLE_EQ(out.qber_hint, 0.025);
  EXPECT_EQ(out.syndrome, m.syndrome);
}

TEST(Messages, CascadeMessagesRoundTrip) {
  Xoshiro256 rng(5);
  ParityRequest req;
  req.block_id = 9;
  req.pass = 2;
  req.range_begins = {0, 64, 4096};
  req.range_ends = {64, 128, 8000};
  const auto r = round_trip(req);
  EXPECT_EQ(r.pass, 2u);
  EXPECT_EQ(r.range_begins, req.range_begins);
  EXPECT_EQ(r.range_ends, req.range_ends);

  ParityResponse resp;
  resp.block_id = 9;
  resp.pass = 2;
  resp.parities = rng.random_bits(3);
  EXPECT_EQ(round_trip(resp).parities, resp.parities);
}

TEST(Messages, BlindMessagesRoundTrip) {
  Xoshiro256 rng(6);
  BlindRequest req;
  req.block_id = 10;
  req.round = 1;
  EXPECT_EQ(round_trip(req).round, 1u);

  BlindResponse resp;
  resp.block_id = 10;
  resp.round = 1;
  resp.positions = {3, 77};
  resp.values = rng.random_bits(2);
  const auto r = round_trip(resp);
  EXPECT_EQ(r.positions, resp.positions);
  EXPECT_EQ(r.values, resp.values);
}

TEST(Messages, RemainingTypesRoundTrip) {
  VerifyRequest vr{12, 0x1234, 0xabcd, 0xef01};
  const auto v = round_trip(vr);
  EXPECT_EQ(v.seed, 0x1234u);
  EXPECT_EQ(v.tag_hi, 0xabcdu);
  EXPECT_EQ(v.tag_lo, 0xef01u);

  EXPECT_TRUE(round_trip(VerifyResponse{12, true}).match);
  EXPECT_EQ(round_trip(PaParams{12, 99, 512}).out_len, 512u);

  KeyConfirm kc{12, 777, 0xdeadbeef};
  const auto k = round_trip(kc);
  EXPECT_EQ(k.key_id, 777u);
  EXPECT_EQ(k.crc, 0xdeadbeefu);

  Abort abort{12, 3, "qber too high"};
  const auto a = round_trip(abort);
  EXPECT_EQ(a.reason, 3);
  EXPECT_EQ(a.detail, "qber too high");

  EXPECT_TRUE(round_trip(ReconcileDone{12, true}).success);
}

TEST(Messages, TypeTagsAreDistinct) {
  // Every alternative must map to a unique wire tag.
  Xoshiro256 rng(7);
  std::vector<Message> all = {
      DetectionReport{}, SiftResult{},   PeReveal{},       PeReport{},
      PeVerdict{},       ReconcileStart{}, ParityRequest{}, ParityResponse{},
      ReconcileDone{},   BlindRequest{}, BlindResponse{},  VerifyRequest{},
      VerifyResponse{},  PaParams{},     KeyConfirm{},     Abort{}};
  std::set<std::uint8_t> tags;
  for (const auto& m : all) tags.insert(message_type(m));
  EXPECT_EQ(tags.size(), all.size());
}

TEST(Messages, UnknownTagRejected) {
  std::vector<std::uint8_t> frame = {0xee, 0, 0, 0};
  EXPECT_THROW(decode_message(frame), Error);
}

TEST(Messages, TruncatedFrameRejected) {
  const auto bytes = encode_message(Message{PaParams{1, 2, 3}});
  for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
    EXPECT_THROW(
        decode_message(std::span(bytes).subspan(0, cut)), Error)
        << cut;
  }
}

TEST(Messages, TrailingGarbageRejected) {
  auto bytes = encode_message(Message{VerifyResponse{1, true}});
  bytes.push_back(0x00);
  EXPECT_THROW(decode_message(bytes), Error);
}

TEST(Messages, EmptyFrameRejected) {
  EXPECT_THROW(decode_message({}), Error);
}

TEST(Messages, NamesAreStable) {
  EXPECT_STREQ(message_name(Message{Abort{}}), "Abort");
  EXPECT_STREQ(message_name(Message{DetectionReport{}}), "DetectionReport");
  EXPECT_STREQ(message_name(Message{PaParams{}}), "PaParams");
}

}  // namespace
}  // namespace qkdpp::protocol
