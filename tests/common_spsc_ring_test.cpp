// SpscRing unit + concurrency tests: the wrap-around arithmetic, the
// close/poison lifecycle against blocked endpoints, and an interleaving
// property stress (every pushed item arrives exactly once, in order) that
// the QKDPP_TSAN build runs under ThreadSanitizer - the acquire/release
// pairs and the eventcount wakeups are the things a reordering compiler
// or a weakly-ordered machine would break.
#include "common/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace qkdpp {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(64).capacity(), 64u);
  EXPECT_THROW(SpscRing<int>(0), std::invalid_argument);
}

TEST(SpscRing, WrapAroundAtCapacityPreservesOrder) {
  // Push/pop far past the capacity so the indices wrap the mask many
  // times; FIFO order and content must survive every wrap.
  SpscRing<int> ring(4);
  int next_push = 0;
  int next_pop = 0;
  for (int round = 0; round < 100; ++round) {
    // Fill to capacity exactly, then drain a varying amount.
    while (next_push - next_pop < 4) {
      int v = next_push;
      ASSERT_TRUE(ring.try_push(v));
      ++next_push;
    }
    int extra = 0;
    EXPECT_FALSE(ring.try_push(extra)) << "full ring must refuse";
    const int drain = 1 + round % 4;
    for (int i = 0; i < drain; ++i) {
      const auto got = ring.try_pop();
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(*got, next_pop);
      ++next_pop;
    }
  }
}

TEST(SpscRing, TryPopOnEmptyReturnsNullopt) {
  SpscRing<int> ring(2);
  EXPECT_FALSE(ring.try_pop().has_value());
  int v = 7;
  ASSERT_TRUE(ring.try_push(v));
  EXPECT_EQ(ring.try_pop(), std::optional<int>(7));
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(SpscRing, CloseDrainsThenEndsStream) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(ring.push(i));
  ring.close();
  EXPECT_FALSE(ring.push(99)) << "push after close must refuse";
  for (int i = 0; i < 3; ++i) {
    const auto got = ring.pop();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, i);
  }
  EXPECT_FALSE(ring.pop().has_value()) << "drained + closed = end of stream";
}

TEST(SpscRing, CloseWakesBlockedConsumer) {
  SpscRing<int> ring(2);
  std::thread consumer([&] {
    // Blocks on the empty ring until close() bumps the eventcount.
    EXPECT_FALSE(ring.pop().has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ring.close();
  consumer.join();  // hangs here if the close wake is lost
}

TEST(SpscRing, CloseWakesBlockedProducer) {
  SpscRing<int> ring(1);
  int v = 1;
  ASSERT_TRUE(ring.try_push(v));  // ring now full
  std::thread producer([&] {
    // Blocks on the full ring until close() refuses the item.
    EXPECT_FALSE(ring.push(2));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ring.close();
  producer.join();  // hangs here if the close wake is lost
  // The queued item still drains after close.
  EXPECT_EQ(ring.pop(), std::optional<int>(1));
  EXPECT_FALSE(ring.pop().has_value());
}

TEST(SpscRing, PoisonAbandonsQueuedItemsAndUnblocksBoth) {
  SpscRing<std::string> ring(4);
  ASSERT_TRUE(ring.push("queued"));
  ring.poison();
  EXPECT_FALSE(ring.push("late")) << "poisoned ring refuses pushes";
  EXPECT_FALSE(ring.pop().has_value()) << "poisoned ring abandons items";
  EXPECT_TRUE(ring.poisoned());
}

TEST(SpscRing, DestructionReleasesUnpoppedItems) {
  // shared_ptr use-counts prove the ring destroys what was never popped.
  auto tracer = std::make_shared<int>(42);
  {
    SpscRing<std::shared_ptr<int>> ring(8);
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(ring.push(tracer));
    ASSERT_TRUE(ring.pop().has_value());
    EXPECT_EQ(tracer.use_count(), 5);  // us + 4 still queued
  }
  EXPECT_EQ(tracer.use_count(), 1) << "ring destructor must free slots";
}

TEST(SpscRing, BlockingInterleavingDeliversExactlyOnceInOrder) {
  // The TSan-targeted property stress: one producer, one consumer, a tiny
  // ring so both sides constantly block and wake. Every item must arrive
  // exactly once, in order, through many full/empty transitions.
  constexpr std::uint64_t kItems = 200000;
  SpscRing<std::uint64_t> ring(4);
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      ASSERT_TRUE(ring.push(i));
    }
    ring.close();
  });
  std::uint64_t expected = 0;
  while (auto got = ring.pop()) {
    ASSERT_EQ(*got, expected);
    ++expected;
  }
  producer.join();
  EXPECT_EQ(expected, kItems);
}

TEST(SpscRing, PoisonFromThirdThreadUnblocksBothEndpoints) {
  // poison() is the only cross-thread verb: a supervisor killing the
  // stream must release a blocked producer and a blocked consumer at once.
  SpscRing<int> full_ring(1);
  int v = 1;
  ASSERT_TRUE(full_ring.try_push(v));
  SpscRing<int> empty_ring(1);

  std::atomic<int> released{0};
  std::thread producer([&] {
    EXPECT_FALSE(full_ring.push(2));
    released.fetch_add(1);
  });
  std::thread consumer([&] {
    EXPECT_FALSE(empty_ring.pop().has_value());
    released.fetch_add(1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  full_ring.poison();
  empty_ring.poison();
  producer.join();
  consumer.join();
  EXPECT_EQ(released.load(), 2);
}

}  // namespace
}  // namespace qkdpp
