// ct_equal correctness at word boundaries + the Wegman-Carter verify path
// that motivated it (the tag compare must be constant-time: a == that
// short-circuits leaks how long a forged prefix matched).
#include "common/ct_equal.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "auth/key_pool.hpp"
#include "auth/wegman_carter.hpp"
#include "common/rng.hpp"

namespace qkdpp {
namespace {

// Sizes straddling every internal boundary a word-at-a-time implementation
// could mishandle: empty, sub-word, exact words, words +/- 1.
const std::size_t kBoundarySizes[] = {0,  1,  7,  8,  9,  15, 16,
                                      17, 31, 32, 33, 63, 64, 65};

std::vector<std::uint8_t> pattern_bytes(std::size_t n, std::uint8_t salt) {
  std::vector<std::uint8_t> bytes(n);
  for (std::size_t i = 0; i < n; ++i) {
    bytes[i] = static_cast<std::uint8_t>(i * 131 + salt);
  }
  return bytes;
}

TEST(CtEqual, EqualAtWordBoundarySizes) {
  for (const std::size_t n : kBoundarySizes) {
    const auto a = pattern_bytes(n, 7);
    const auto b = pattern_bytes(n, 7);
    EXPECT_TRUE(ct_equal(a.data(), b.data(), n)) << "size " << n;
  }
}

TEST(CtEqual, SingleByteDifferenceAtEveryPosition) {
  for (const std::size_t n : kBoundarySizes) {
    if (n == 0) continue;
    const auto a = pattern_bytes(n, 7);
    // Flip one byte at the front, the back, and every word seam in range.
    for (const std::size_t pos : {std::size_t{0}, n / 2, n - 1}) {
      auto b = a;
      b[pos] ^= 0x01;
      EXPECT_FALSE(ct_equal(a.data(), b.data(), n))
          << "size " << n << " pos " << pos;
    }
  }
}

TEST(CtEqual, SingleBitDifferenceEveryBitOfOneWord) {
  // The OR-fold must see every bit lane; a masked lane would accept a
  // near-miss forgery.
  const auto a = pattern_bytes(8, 3);
  for (std::size_t bit = 0; bit < 64; ++bit) {
    auto b = a;
    b[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(ct_equal(a.data(), b.data(), 8)) << "bit " << bit;
  }
}

TEST(CtEqual, U128EqualAndEveryBitDifference) {
  const U128 a{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  EXPECT_TRUE(ct_equal(a, a));
  for (std::size_t bit = 0; bit < 128; ++bit) {
    U128 b = a;
    if (bit < 64) {
      b.lo ^= (1ULL << bit);
    } else {
      b.hi ^= (1ULL << (bit - 64));
    }
    EXPECT_FALSE(ct_equal(a, b)) << "bit " << bit;
  }
}

TEST(CtEqual, WegmanCarterVerifyAcceptsGenuineRejectsTampered) {
  Xoshiro256 rng(0x014);
  // Two pools over the same material: sender and receiver consume tag key
  // in lockstep, as the protocol requires.
  const BitVec material = rng.random_bits(8 * auth::kTagKeyBits);
  auth::KeyPool alice_pool(material);
  auth::KeyPool bob_pool(material);
  auth::WegmanCarter alice(alice_pool);
  auth::WegmanCarter bob(bob_pool);

  const auto message = pattern_bytes(100, 42);
  const auth::Tag tag = alice.sign(message);
  EXPECT_TRUE(bob.verify(message, tag));

  // Fresh pool positions per attempt (verify consumes either way).
  const auth::Tag tag2 = alice.sign(message);
  auth::Tag tampered = tag2;
  tampered.value.lo ^= 1;
  EXPECT_FALSE(bob.verify(message, tampered));

  const auth::Tag tag3 = alice.sign(message);
  auto altered = message;
  altered[50] ^= 0x80;
  EXPECT_FALSE(bob.verify(altered, tag3));
}

}  // namespace
}  // namespace qkdpp
