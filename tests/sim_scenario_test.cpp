// Scenario scheduling tests: perturbations hit exactly their block ranges,
// values stay in LinkConfig::validate() range, and the shipped scenarios
// are well formed.
#include "sim/scenario.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace qkdpp::sim {
namespace {

LinkConfig base_link() {
  LinkConfig link;
  link.channel.length_km = 25.0;
  return link;
}

TEST(LinkSchedule, QberBurstAppliesExactlyInRange) {
  LinkSchedule schedule;
  Perturbation burst;
  burst.kind = PerturbationKind::kQberBurst;
  burst.begin_block = 5;
  burst.end_block = 9;
  burst.magnitude = 0.04;
  schedule.perturbations.push_back(burst);

  const LinkConfig base = base_link();
  for (std::uint64_t b = 0; b < 12; ++b) {
    const LinkConfig at = schedule.config_at(base, b);
    if (b >= 5 && b < 9) {
      EXPECT_DOUBLE_EQ(at.channel.misalignment,
                       base.channel.misalignment + 0.04)
          << "block " << b;
    } else {
      EXPECT_DOUBLE_EQ(at.channel.misalignment, base.channel.misalignment)
          << "block " << b;
    }
    EXPECT_NO_THROW(at.validate()) << "block " << b;
  }
}

TEST(LinkSchedule, EmptyScheduleIsIdentity) {
  const LinkSchedule schedule;
  EXPECT_TRUE(schedule.empty());
  const LinkConfig base = base_link();
  const LinkConfig at = schedule.config_at(base, 3);
  EXPECT_DOUBLE_EQ(at.channel.attenuation_db_per_km,
                   base.channel.attenuation_db_per_km);
  EXPECT_DOUBLE_EQ(at.detector.efficiency, base.detector.efficiency);
}

TEST(LinkSchedule, AttenuationDriftIsSinusoidalAndClamped) {
  LinkSchedule schedule;
  Perturbation drift;
  drift.kind = PerturbationKind::kAttenuationDrift;
  drift.begin_block = 0;
  drift.end_block = 8;
  drift.magnitude = 0.1;
  drift.period_blocks = 8.0;
  schedule.perturbations.push_back(drift);

  const LinkConfig base = base_link();
  // Phase 0 and the half-cycle are on the base value; the quarter cycle is
  // the positive peak, three quarters the trough.
  EXPECT_NEAR(schedule.config_at(base, 0).channel.attenuation_db_per_km,
              base.channel.attenuation_db_per_km, 1e-12);
  EXPECT_NEAR(schedule.config_at(base, 2).channel.attenuation_db_per_km,
              base.channel.attenuation_db_per_km + 0.1, 1e-12);
  EXPECT_NEAR(schedule.config_at(base, 6).channel.attenuation_db_per_km,
              base.channel.attenuation_db_per_km - 0.1, 1e-12);
  // A drift deeper than the base attenuation clamps at zero, never
  // negative.
  drift.magnitude = 1.0;
  LinkSchedule deep;
  deep.perturbations.push_back(drift);
  EXPECT_GE(deep.config_at(base, 6).channel.attenuation_db_per_km, 0.0);
  EXPECT_NO_THROW(deep.config_at(base, 6).validate());
}

TEST(LinkSchedule, EveRampHoldsTerminalValue) {
  LinkSchedule schedule;
  Perturbation ramp;
  ramp.kind = PerturbationKind::kEveRamp;
  ramp.begin_block = 2;
  ramp.end_block = 6;
  ramp.magnitude = 0.4;
  schedule.perturbations.push_back(ramp);

  const LinkConfig base = base_link();
  EXPECT_DOUBLE_EQ(schedule.config_at(base, 0).eve.intercept_fraction, 0.0);
  EXPECT_NEAR(schedule.config_at(base, 4).eve.intercept_fraction, 0.2, 1e-12);
  // The eavesdropper does not leave when the ramp window closes.
  EXPECT_NEAR(schedule.config_at(base, 10).eve.intercept_fraction, 0.4,
              1e-12);
}

TEST(LinkSchedule, EmptyRangeRampsNeverActivate) {
  // end_block <= begin_block means "never active" for every kind,
  // including the progress-based ramps that persist past their window.
  const LinkConfig base = base_link();
  for (const auto kind :
       {PerturbationKind::kEveRamp, PerturbationKind::kDetectorDegradation,
        PerturbationKind::kQberBurst, PerturbationKind::kAttenuationDrift}) {
    LinkSchedule schedule;
    Perturbation p;
    p.kind = kind;
    p.begin_block = 5;
    p.end_block = 5;
    p.magnitude = 0.3;
    schedule.perturbations.push_back(p);
    for (const std::uint64_t b : {0ull, 5ull, 9ull}) {
      const LinkConfig at = schedule.config_at(base, b);
      EXPECT_DOUBLE_EQ(at.eve.intercept_fraction,
                       base.eve.intercept_fraction)
          << to_string(kind) << " block " << b;
      EXPECT_DOUBLE_EQ(at.detector.efficiency, base.detector.efficiency)
          << to_string(kind) << " block " << b;
      EXPECT_DOUBLE_EQ(at.channel.misalignment, base.channel.misalignment)
          << to_string(kind) << " block " << b;
      EXPECT_DOUBLE_EQ(at.channel.attenuation_db_per_km,
                       base.channel.attenuation_db_per_km)
          << to_string(kind) << " block " << b;
    }
  }
}

TEST(LinkSchedule, DetectorDegradationPersists) {
  LinkSchedule schedule;
  Perturbation decay;
  decay.kind = PerturbationKind::kDetectorDegradation;
  decay.begin_block = 0;
  decay.end_block = 10;
  decay.magnitude = 0.5;
  schedule.perturbations.push_back(decay);

  const LinkConfig base = base_link();
  EXPECT_DOUBLE_EQ(schedule.config_at(base, 0).detector.efficiency,
                   base.detector.efficiency);
  EXPECT_NEAR(schedule.config_at(base, 5).detector.efficiency,
              base.detector.efficiency * 0.75, 1e-12);
  EXPECT_NEAR(schedule.config_at(base, 20).detector.efficiency,
              base.detector.efficiency * 0.5, 1e-12);
}

TEST(Scenario, ShippedScenariosValidateAndScale) {
  for (const auto& scenario : shipped_scenarios()) {
    EXPECT_FALSE(scenario.name.empty());
    EXPECT_GT(scenario.blocks, 0u);
    EXPECT_NO_THROW(scenario.validate());
  }
  // Scaling the timeline keeps event indices inside the run.
  for (const auto& scenario : shipped_scenarios(7)) {
    EXPECT_EQ(scenario.blocks, 7u);
    for (const auto& p : scenario.schedule.perturbations) {
      EXPECT_LE(p.begin_block, scenario.blocks);
    }
    for (const auto& event : scenario.device_events) {
      EXPECT_LT(event.offline_at_block, scenario.blocks);
    }
    EXPECT_NO_THROW(scenario.validate());
  }
}

TEST(Scenario, ValidationRejectsBadConfigs) {
  ScenarioConfig scenario;
  EXPECT_THROW(scenario.validate(), Error);  // empty name
  scenario.name = "x";
  scenario.blocks = 0;
  EXPECT_THROW(scenario.validate(), Error);
  scenario.blocks = 8;
  Perturbation p;
  p.kind = PerturbationKind::kQberBurst;
  p.begin_block = 6;
  p.end_block = 2;  // inverted
  scenario.schedule.perturbations.push_back(p);
  EXPECT_THROW(scenario.validate(), Error);
  scenario.schedule.perturbations.clear();
  p.begin_block = 0;
  p.end_block = 4;
  p.magnitude = 0.9;  // misalignment delta outside [0, 0.5]
  scenario.schedule.perturbations.push_back(p);
  EXPECT_THROW(scenario.validate(), Error);
  scenario.schedule.perturbations.clear();
  DeviceEvent event;
  event.offline_at_block = 9;  // past the 8-block timeline
  scenario.device_events.push_back(event);
  EXPECT_THROW(scenario.validate(), Error);
}

}  // namespace
}  // namespace qkdpp::sim
