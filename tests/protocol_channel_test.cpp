// In-process channel pair: delivery order, blocking, close semantics,
// counters, virtual-time model, tampering hook, authenticated wrapper.
#include "protocol/auth_channel.hpp"
#include "protocol/channel.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace qkdpp::protocol {
namespace {

std::vector<std::uint8_t> frame_of(std::string_view s) {
  return {s.begin(), s.end()};
}

TEST(Channel, DeliversInOrder) {
  auto [alice, bob] = make_channel_pair();
  alice->send(frame_of("one"));
  alice->send(frame_of("two"));
  alice->send(frame_of("three"));
  EXPECT_EQ(bob->receive(), frame_of("one"));
  EXPECT_EQ(bob->receive(), frame_of("two"));
  EXPECT_EQ(bob->receive(), frame_of("three"));
}

TEST(Channel, FullDuplex) {
  auto [alice, bob] = make_channel_pair();
  alice->send(frame_of("ping"));
  bob->send(frame_of("pong"));
  EXPECT_EQ(bob->receive(), frame_of("ping"));
  EXPECT_EQ(alice->receive(), frame_of("pong"));
}

TEST(Channel, BlockingReceiveWakesOnSend) {
  auto [alice, bob] = make_channel_pair();
  std::vector<std::uint8_t> got;
  std::thread receiver([&] { got = bob->receive(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  alice->send(frame_of("wake"));
  receiver.join();
  EXPECT_EQ(got, frame_of("wake"));
}

TEST(Channel, CloseUnblocksReceiver) {
  auto [alice, bob] = make_channel_pair();
  std::thread receiver([&] {
    try {
      bob->receive();
      FAIL() << "expected channel-closed";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kChannelClosed);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  alice->close();
  receiver.join();
}

TEST(Channel, DrainsQueueBeforeReportingClose) {
  auto [alice, bob] = make_channel_pair();
  alice->send(frame_of("last words"));
  alice->close();
  EXPECT_EQ(bob->receive(), frame_of("last words"));
  EXPECT_THROW(bob->receive(), Error);
}

TEST(Channel, SendAfterPeerCloseThrows) {
  auto [alice, bob] = make_channel_pair();
  bob->close();
  EXPECT_THROW(alice->send(frame_of("x")), Error);
}

TEST(Channel, CountersTrackTraffic) {
  auto [alice, bob] = make_channel_pair();
  alice->send(frame_of("12345"));
  alice->send(frame_of("678"));
  (void)bob->receive();
  const auto a = alice->counters();
  EXPECT_EQ(a.messages_sent, 2u);
  EXPECT_EQ(a.bytes_sent, 8u);
  const auto b = bob->counters();
  EXPECT_EQ(b.messages_received, 1u);
  EXPECT_EQ(b.bytes_received, 5u);
}

TEST(Channel, VirtualTimeModel) {
  ChannelModel model;
  model.latency_s = 0.01;
  model.bandwidth_bps = 8000.0;  // 1000 bytes/s
  auto [alice, bob] = make_channel_pair(model);
  alice->send(std::vector<std::uint8_t>(500, 0));  // 0.01 + 0.5 s
  EXPECT_NEAR(alice->counters().virtual_time_s, 0.51, 1e-9);
  alice->send(std::vector<std::uint8_t>(500, 0));
  EXPECT_NEAR(alice->counters().virtual_time_s, 1.02, 1e-9);
}

TEST(Channel, TamperingWrapperFlipsEveryNth) {
  auto [alice, bob] = make_channel_pair();
  auto tampering = make_tampering_channel(std::move(alice), 2);
  tampering->send(frame_of("aaaa"));
  tampering->send(frame_of("bbbb"));
  EXPECT_EQ(bob->receive(), frame_of("aaaa"));
  EXPECT_NE(bob->receive(), frame_of("bbbb"));
}

BitVec shared_material(std::uint64_t seed, std::size_t tags) {
  Xoshiro256 rng(seed);
  return rng.random_bits(auth::kTagKeyBits * tags);
}

struct AuthFixture {
  // Pools: a2b direction and b2a direction, mirrored on both sides.
  BitVec a2b = shared_material(100, 16);
  BitVec b2a = shared_material(101, 16);
  auth::KeyPool alice_send{a2b}, alice_recv{b2a};
  auth::KeyPool bob_send{b2a}, bob_recv{a2b};
};

TEST(AuthChannel, RoundTrip) {
  AuthFixture fx;
  auto [raw_a, raw_b] = make_channel_pair();
  AuthenticatedChannel alice(std::move(raw_a), fx.alice_send, fx.alice_recv);
  AuthenticatedChannel bob(std::move(raw_b), fx.bob_send, fx.bob_recv);

  alice.send(frame_of("hello bob"));
  EXPECT_EQ(bob.receive(), frame_of("hello bob"));
  bob.send(frame_of("hello alice"));
  EXPECT_EQ(alice.receive(), frame_of("hello alice"));
}

TEST(AuthChannel, DetectsTampering) {
  AuthFixture fx;
  auto [raw_a, raw_b] = make_channel_pair();
  auto tampering = make_tampering_channel(std::move(raw_a), 1);
  AuthenticatedChannel alice(std::move(tampering), fx.alice_send,
                             fx.alice_recv);
  AuthenticatedChannel bob(std::move(raw_b), fx.bob_send, fx.bob_recv);

  alice.send(frame_of("important"));
  try {
    bob.receive();
    FAIL() << "expected authentication failure";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kAuthentication);
  }
}

TEST(AuthChannel, RejectsShortFrame) {
  AuthFixture fx;
  auto [raw_a, raw_b] = make_channel_pair();
  AuthenticatedChannel bob(std::move(raw_b), fx.bob_send, fx.bob_recv);
  raw_a->send(frame_of("short"));  // unauthenticated tiny frame
  EXPECT_THROW(bob.receive(), Error);
}

TEST(AuthChannel, ConsumesKeyPerMessage) {
  AuthFixture fx;
  auto [raw_a, raw_b] = make_channel_pair();
  AuthenticatedChannel alice(std::move(raw_a), fx.alice_send, fx.alice_recv);
  AuthenticatedChannel bob(std::move(raw_b), fx.bob_send, fx.bob_recv);

  const auto before = fx.alice_send.available();
  alice.send(frame_of("one"));
  alice.send(frame_of("two"));
  EXPECT_EQ(fx.alice_send.available(), before - 2 * auth::kTagKeyBits);
  (void)bob.receive();
  (void)bob.receive();
  EXPECT_EQ(fx.bob_recv.available(), before - 2 * auth::kTagKeyBits);
}

TEST(AuthChannel, TwoThreadPingPong) {
  AuthFixture fx;
  auto [raw_a, raw_b] = make_channel_pair();
  AuthenticatedChannel alice(std::move(raw_a), fx.alice_send, fx.alice_recv);
  AuthenticatedChannel bob(std::move(raw_b), fx.bob_send, fx.bob_recv);

  std::thread bob_thread([&] {
    for (int i = 0; i < 8; ++i) {
      auto frame = bob.receive();
      frame.push_back(static_cast<std::uint8_t>('!'));
      bob.send(std::move(frame));
    }
  });
  for (int i = 0; i < 8; ++i) {
    alice.send(frame_of("m" + std::to_string(i)));
    const auto echoed = alice.receive();
    EXPECT_EQ(echoed, frame_of("m" + std::to_string(i) + "!"));
  }
  bob_thread.join();
}

}  // namespace
}  // namespace qkdpp::protocol
