// Carry-less multiply and GF(2^128) field tests against a bitwise oracle.
#include "common/gf2.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace qkdpp {
namespace {

// Oracle: bit-at-a-time carry-less multiply.
U128 clmul64_slow(std::uint64_t a, std::uint64_t b) {
  U128 r{0, 0};
  for (int i = 0; i < 64; ++i) {
    if ((b >> i) & 1) {
      r.lo ^= a << i;
      if (i != 0) r.hi ^= a >> (64 - i);
    }
  }
  return r;
}

// Oracle: GF(2^128) multiply via shift-and-reduce, one bit at a time.
U128 gf128_mul_slow(U128 a, U128 b) {
  U128 acc{0, 0};
  for (int i = 127; i >= 0; --i) {
    // acc <<= 1, reduce if overflow
    const bool carry = acc.hi >> 63;
    acc.hi = (acc.hi << 1) | (acc.lo >> 63);
    acc.lo <<= 1;
    if (carry) acc.lo ^= 0x87;  // x^128 = x^7 + x^2 + x + 1
    const bool bit =
        i >= 64 ? ((b.hi >> (i - 64)) & 1) != 0 : ((b.lo >> i) & 1) != 0;
    if (bit) acc ^= a;
  }
  return acc;
}

TEST(Clmul, ZeroAndOne) {
  EXPECT_EQ(clmul64(0, 12345), (U128{0, 0}));
  EXPECT_EQ(clmul64(12345, 0), (U128{0, 0}));
  EXPECT_EQ(clmul64(1, 12345), (U128{0, 12345}));
  EXPECT_EQ(clmul64(12345, 1), (U128{0, 12345}));
}

TEST(Clmul, ShiftBehaviour) {
  // Multiplying by x^k shifts left by k.
  EXPECT_EQ(clmul64(0x8000000000000000ULL, 2),
            (U128{1, 0}));  // top bit * x crosses into hi
  EXPECT_EQ(clmul64(3, 3), (U128{0, 5}));  // (x+1)^2 = x^2+1
}

TEST(Clmul, MatchesSlowOracle) {
  Xoshiro256 rng(100);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::uint64_t a = rng.next_u64();
    const std::uint64_t b = rng.next_u64();
    EXPECT_EQ(clmul64(a, b), clmul64_slow(a, b)) << a << " " << b;
  }
}

TEST(Clmul, Commutative) {
  Xoshiro256 rng(101);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t a = rng.next_u64();
    const std::uint64_t b = rng.next_u64();
    EXPECT_EQ(clmul64(a, b), clmul64(b, a));
  }
}

TEST(Gf128, IdentityAndZero) {
  const U128 one{0, 1};
  const U128 zero{0, 0};
  Xoshiro256 rng(102);
  for (int trial = 0; trial < 100; ++trial) {
    const U128 a{rng.next_u64(), rng.next_u64()};
    EXPECT_EQ(gf128_mul(a, one), a);
    EXPECT_EQ(gf128_mul(one, a), a);
    EXPECT_EQ(gf128_mul(a, zero), zero);
  }
}

TEST(Gf128, MatchesSlowOracle) {
  Xoshiro256 rng(103);
  for (int trial = 0; trial < 500; ++trial) {
    const U128 a{rng.next_u64(), rng.next_u64()};
    const U128 b{rng.next_u64(), rng.next_u64()};
    EXPECT_EQ(gf128_mul(a, b), gf128_mul_slow(a, b));
  }
}

TEST(Gf128, Commutative) {
  Xoshiro256 rng(104);
  for (int trial = 0; trial < 200; ++trial) {
    const U128 a{rng.next_u64(), rng.next_u64()};
    const U128 b{rng.next_u64(), rng.next_u64()};
    EXPECT_EQ(gf128_mul(a, b), gf128_mul(b, a));
  }
}

TEST(Gf128, Distributive) {
  Xoshiro256 rng(105);
  for (int trial = 0; trial < 200; ++trial) {
    const U128 a{rng.next_u64(), rng.next_u64()};
    const U128 b{rng.next_u64(), rng.next_u64()};
    const U128 c{rng.next_u64(), rng.next_u64()};
    EXPECT_EQ(gf128_mul(a, b ^ c), gf128_mul(a, b) ^ gf128_mul(a, c));
  }
}

TEST(Gf128, Associative) {
  Xoshiro256 rng(106);
  for (int trial = 0; trial < 100; ++trial) {
    const U128 a{rng.next_u64(), rng.next_u64()};
    const U128 b{rng.next_u64(), rng.next_u64()};
    const U128 c{rng.next_u64(), rng.next_u64()};
    EXPECT_EQ(gf128_mul(gf128_mul(a, b), c), gf128_mul(a, gf128_mul(b, c)));
  }
}

TEST(Gf128, XOverflowReduces) {
  // x^127 * x = x^128 = x^7 + x^2 + x + 1 = 0x87.
  const U128 x127{std::uint64_t{1} << 63, 0};
  const U128 x{0, 2};
  EXPECT_EQ(gf128_mul(x127, x), (U128{0, 0x87}));
}

TEST(Gf128, PowMatchesRepeatedMul) {
  Xoshiro256 rng(107);
  const U128 a{rng.next_u64(), rng.next_u64()};
  U128 acc{0, 1};
  for (std::uint64_t e = 0; e < 20; ++e) {
    EXPECT_EQ(gf128_pow(a, e), acc) << e;
    acc = gf128_mul(acc, a);
  }
}

TEST(Gf128, FermatLittleTheoremSpot) {
  // a^(2^128 - 1) == 1 for a != 0. Exponentiate via the factored chain
  // a^(2^128) = a  (Frobenius), checked as 128 squarings returning a.
  Xoshiro256 rng(108);
  U128 a{rng.next_u64(), rng.next_u64() | 1};
  U128 sq = a;
  for (int i = 0; i < 128; ++i) sq = gf128_mul(sq, sq);
  EXPECT_EQ(sq, a);
}

}  // namespace
}  // namespace qkdpp
