// Word-level carry-less multiplication tests: clmul64_fast vs the portable
// window implementation, and gf2_poly_mul (Karatsuba + schoolbook) against
// a bit-at-a-time convolution oracle, with adversarial word-boundary sizes.
#include "common/clmul.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace qkdpp {
namespace {

/// Bit-at-a-time GF(2) convolution, straight from the definition.
BitVec poly_mul_naive(const BitVec& a, const BitVec& b) {
  if (a.empty() || b.empty()) return BitVec();
  BitVec out(a.size() + b.size() - 1);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!a.get(i)) continue;
    for (std::size_t j = 0; j < b.size(); ++j) {
      if (b.get(j)) out.flip(i + j);
    }
  }
  return out;
}

TEST(Clmul, Clmul64FastMatchesPortable) {
  Xoshiro256 rng(1);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::uint64_t a = rng.next_u64();
    const std::uint64_t b = rng.next_u64();
    EXPECT_EQ(clmul64_fast(a, b), clmul64(a, b)) << a << " * " << b;
  }
  // Degenerate operands.
  EXPECT_EQ(clmul64_fast(0, 0xffffffffffffffffULL), clmul64(0, ~0ULL));
  EXPECT_EQ(clmul64_fast(~0ULL, ~0ULL), clmul64(~0ULL, ~0ULL));
  EXPECT_EQ(clmul64_fast(1, 1), (U128{0, 1}));
}

TEST(Clmul, PolyMulMatchesNaiveSmall) {
  Xoshiro256 rng(2);
  // Word-boundary adversarial sizes on both operands.
  const std::size_t sizes[] = {1, 7, 63, 64, 65, 127, 128, 129, 200};
  for (const std::size_t na : sizes) {
    for (const std::size_t nb : sizes) {
      const BitVec a = rng.random_bits(na);
      const BitVec b = rng.random_bits(nb);
      EXPECT_EQ(gf2_poly_mul(a, b), poly_mul_naive(a, b)) << na << "x" << nb;
    }
  }
}

TEST(Clmul, PolyMulCommutes) {
  Xoshiro256 rng(3);
  const BitVec a = rng.random_bits(5000);
  const BitVec b = rng.random_bits(1234);
  EXPECT_EQ(gf2_poly_mul(a, b), gf2_poly_mul(b, a));
}

TEST(Clmul, PolyMulKaratsubaPathMatchesNaive) {
  // Sizes chosen to force several Karatsuba levels (threshold is 24 words =
  // 1536 bits), including a ragged chunk in the unbalanced driver.
  Xoshiro256 rng(4);
  for (const auto [na, nb] :
       {std::pair<std::size_t, std::size_t>{4096, 4096},
        {4097, 6143},
        {8192, 20000},
        {10000, 3000}}) {
    const BitVec a = rng.random_bits(na);
    const BitVec b = rng.random_bits(nb);
    EXPECT_EQ(gf2_poly_mul(a, b), poly_mul_naive(a, b)) << na << "x" << nb;
  }
}

TEST(Clmul, PolyMulLinearity) {
  // (x ^ y) * t == x*t ^ y*t: distributivity over GF(2), the property
  // privacy amplification composition relies on.
  Xoshiro256 rng(5);
  const std::size_t n = 3000;
  const BitVec t = rng.random_bits(2000);
  const BitVec x = rng.random_bits(n);
  const BitVec y = rng.random_bits(n);
  BitVec xy = x;
  xy ^= y;
  BitVec expected = gf2_poly_mul(x, t);
  expected ^= gf2_poly_mul(y, t);
  EXPECT_EQ(gf2_poly_mul(xy, t), expected);
}

TEST(Clmul, PolyMulIdentityAndZero) {
  Xoshiro256 rng(6);
  const BitVec a = rng.random_bits(777);
  BitVec one(1);
  one.set(0, true);
  EXPECT_EQ(gf2_poly_mul(a, one), a);
  const BitVec zero(300);  // all-zero polynomial (degree < 300)
  EXPECT_EQ(gf2_poly_mul(a, zero).popcount(), 0u);
  EXPECT_TRUE(gf2_poly_mul(a, BitVec()).empty());
  EXPECT_TRUE(gf2_poly_mul(BitVec(), a).empty());
}

TEST(Clmul, PolyMulAccXorAccumulates) {
  // gf2_poly_mul_acc XORs into the target: accumulating the same product
  // twice must cancel.
  Xoshiro256 rng(7);
  const BitVec a = rng.random_bits(2048);
  const BitVec b = rng.random_bits(2048);
  std::vector<std::uint64_t> acc(a.words().size() + b.words().size(), 0);
  gf2_poly_mul_acc(a.words(), b.words(), acc);
  gf2_poly_mul_acc(a.words(), b.words(), acc);
  for (const auto w : acc) EXPECT_EQ(w, 0u);
}

}  // namespace
}  // namespace qkdpp
