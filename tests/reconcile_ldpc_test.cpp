// LDPC tests: PEG structure, syndrome math, decoder convergence across the
// algorithm/schedule grid, rate adaptation, blind reconciliation.
#include "reconcile/reconciler.hpp"

#include <gtest/gtest.h>

#include "common/entropy.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace qkdpp::reconcile {
namespace {

BitVec corrupt(const BitVec& key, double q, Xoshiro256& rng) {
  BitVec noisy = key;
  for (std::size_t i = 0; i < key.size(); ++i) {
    if (rng.bernoulli(q)) noisy.flip(i);
  }
  return noisy;
}

TEST(LdpcCode, PegStructureIsValid) {
  const LdpcCode code = LdpcCode::peg(1024, 512, DegreeProfile::regular(3), 1);
  EXPECT_EQ(code.n(), 1024u);
  EXPECT_EQ(code.m(), 512u);
  EXPECT_EQ(code.edges(), 3 * 1024u);
  EXPECT_NO_THROW(code.validate());
  EXPECT_DOUBLE_EQ(code.rate(), 0.5);
}

TEST(LdpcCode, PegAvoidsShortCycles) {
  const LdpcCode code = LdpcCode::peg(1024, 512, DegreeProfile::regular(3), 2);
  EXPECT_GE(code.girth_estimate(), 6u);
}

TEST(LdpcCode, PegDeterministicInSeed) {
  const LdpcCode a = LdpcCode::peg(512, 256, DegreeProfile::regular(3), 7);
  const LdpcCode b = LdpcCode::peg(512, 256, DegreeProfile::regular(3), 7);
  Xoshiro256 rng(3);
  const BitVec x = rng.random_bits(512);
  EXPECT_EQ(a.syndrome(x), b.syndrome(x));
}

TEST(LdpcCode, IrregularProfileHonoursFractions) {
  DegreeProfile profile{{{2, 0.5}, {4, 0.5}}};
  const LdpcCode code = LdpcCode::peg(1000, 400, profile, 3);
  EXPECT_EQ(code.edges(), 500u * 2 + 500u * 4);
  std::size_t degree2 = 0;
  for (std::size_t v = 0; v < code.n(); ++v) {
    degree2 += code.var_checks(v).size() == 2;
  }
  EXPECT_EQ(degree2, 500u);
}

TEST(LdpcCode, SyndromeIsLinear) {
  Xoshiro256 rng(4);
  const LdpcCode code = LdpcCode::peg(512, 256, DegreeProfile::regular(3), 9);
  const BitVec x = rng.random_bits(512);
  const BitVec y = rng.random_bits(512);
  BitVec xy = x;
  xy ^= y;
  BitVec sx = code.syndrome(x);
  const BitVec sy = code.syndrome(y);
  sx ^= sy;
  EXPECT_EQ(code.syndrome(xy), sx);
}

TEST(LdpcCode, SyndromeMatchesNaive) {
  Xoshiro256 rng(5);
  const LdpcCode code = LdpcCode::peg(256, 128, DegreeProfile::regular(3), 11);
  const BitVec x = rng.random_bits(256);
  const BitVec s = code.syndrome(x);
  for (std::size_t c = 0; c < code.m(); ++c) {
    bool parity = false;
    for (const auto v : code.check_vars(c)) parity ^= x.get(v);
    EXPECT_EQ(s.get(c), parity) << c;
  }
  EXPECT_TRUE(code.syndrome_matches(x, s));
}

TEST(LdpcCode, TableLookupsWork) {
  EXPECT_GE(code_table().size(), 10u);
  const LdpcCode& code = code_by_id(0);
  EXPECT_EQ(code.n(), 1024u);
  EXPECT_EQ(&code, &code_by_id(0));  // memoized
  EXPECT_THROW(code_by_id(9999), Error);
}

TEST(LdpcCode, PickCodeRespectsEfficiencyTarget) {
  // q = 2%: h2 = 0.1414; f 1.25 -> max rate 0.823 -> expect the 0.8 code.
  const auto id = pick_code(4096, 0.02, 1.25);
  const LdpcCode& code = code_by_id(id);
  // m = 3n/dc rounds down, so the realized rate is within 1e-3 of nominal.
  EXPECT_NEAR(code.rate(), 0.8, 1e-3);
  EXPECT_GE(code.n(), 4096u);

  // q = 9%: h2 = 0.4365; f 1.25 -> max rate 0.454 -> falls back to 0.5
  // (lowest available), the fallback path.
  const auto low = pick_code(4096, 0.09, 1.25);
  EXPECT_NEAR(code_by_id(low).rate(), 0.5, 1e-3);
}

TEST(Decoder, BscLlrValues) {
  EXPECT_NEAR(bsc_llr(0.02), std::log(0.98 / 0.02), 1e-6);
  EXPECT_GT(bsc_llr(1e-12), 0.0f);   // clamped, finite
  EXPECT_NEAR(bsc_llr(0.5), 0.0f, 1e-6);
}

TEST(Decoder, ZeroNoiseConvergesImmediately) {
  Xoshiro256 rng(6);
  const LdpcCode& code = code_by_id(0);
  const BitVec x = rng.random_bits(code.n());
  const BitVec s = code.syndrome(x);
  std::vector<float> llr(code.n());
  for (std::size_t v = 0; v < code.n(); ++v) {
    llr[v] = x.get(v) ? -8.0f : 8.0f;
  }
  for (const auto schedule : {BpSchedule::kFlooding, BpSchedule::kLayered}) {
    DecoderConfig config;
    config.schedule = schedule;
    const auto result = decode_syndrome(code, s, llr, config);
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(result.word, x);
    EXPECT_EQ(result.iterations, 1u);
  }
}

struct DecoderCase {
  BpAlgorithm algorithm;
  BpSchedule schedule;
  double qber;
};

class DecoderGrid : public ::testing::TestWithParam<DecoderCase> {};

TEST_P(DecoderGrid, RecoversAliceWordThroughBsc) {
  const auto [algorithm, schedule, q] = GetParam();
  Xoshiro256 rng(static_cast<std::uint64_t>(q * 1e5) + 77);
  const LdpcCode& code = code_by_id(3);  // n=4096, rate 0.5
  const BitVec alice = rng.random_bits(code.n());
  const BitVec bob = corrupt(alice, q, rng);
  const BitVec s = code.syndrome(alice);

  const float channel = bsc_llr(q);
  std::vector<float> llr(code.n());
  for (std::size_t v = 0; v < code.n(); ++v) {
    llr[v] = bob.get(v) ? -channel : channel;
  }
  DecoderConfig config;
  config.algorithm = algorithm;
  config.schedule = schedule;
  config.max_iterations = 100;
  const auto result = decode_syndrome(code, s, llr, config);
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.word, alice);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DecoderGrid,
    ::testing::Values(
        DecoderCase{BpAlgorithm::kMinSum, BpSchedule::kFlooding, 0.02},
        DecoderCase{BpAlgorithm::kMinSum, BpSchedule::kLayered, 0.02},
        DecoderCase{BpAlgorithm::kSumProduct, BpSchedule::kFlooding, 0.02},
        DecoderCase{BpAlgorithm::kSumProduct, BpSchedule::kLayered, 0.02},
        DecoderCase{BpAlgorithm::kMinSum, BpSchedule::kLayered, 0.05},
        DecoderCase{BpAlgorithm::kSumProduct, BpSchedule::kLayered, 0.05}));

TEST(Decoder, LayeredConvergesFasterThanFlooding) {
  Xoshiro256 rng(88);
  const LdpcCode& code = code_by_id(3);
  const BitVec alice = rng.random_bits(code.n());
  const BitVec bob = corrupt(alice, 0.04, rng);
  const BitVec s = code.syndrome(alice);
  const float channel = bsc_llr(0.04);
  std::vector<float> llr(code.n());
  for (std::size_t v = 0; v < code.n(); ++v) {
    llr[v] = bob.get(v) ? -channel : channel;
  }
  DecoderConfig flooding;
  flooding.schedule = BpSchedule::kFlooding;
  flooding.max_iterations = 200;
  DecoderConfig layered;
  layered.schedule = BpSchedule::kLayered;
  layered.max_iterations = 200;
  const auto f = decode_syndrome(code, s, llr, flooding);
  const auto l = decode_syndrome(code, s, llr, layered);
  ASSERT_TRUE(f.converged);
  ASSERT_TRUE(l.converged);
  EXPECT_LT(l.iterations, f.iterations);
}

TEST(Decoder, ParallelFloodingMatchesSerial) {
  Xoshiro256 rng(89);
  const LdpcCode& code = code_by_id(3);
  const BitVec alice = rng.random_bits(code.n());
  const BitVec bob = corrupt(alice, 0.03, rng);
  const BitVec s = code.syndrome(alice);
  const float channel = bsc_llr(0.03);
  std::vector<float> llr(code.n());
  for (std::size_t v = 0; v < code.n(); ++v) {
    llr[v] = bob.get(v) ? -channel : channel;
  }
  DecoderConfig serial;
  serial.schedule = BpSchedule::kFlooding;
  DecoderConfig parallel = serial;
  ThreadPool pool(2);
  parallel.pool = &pool;
  const auto a = decode_syndrome(code, s, llr, serial);
  const auto b = decode_syndrome(code, s, llr, parallel);
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  EXPECT_EQ(a.word, b.word);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(Decoder, FailsGracefullyAboveThreshold) {
  // Rate 0.8 code at q = 11% is far beyond capacity: must report failure,
  // not loop or crash.
  Xoshiro256 rng(90);
  const LdpcCode& code = code_by_id(7);
  const BitVec alice = rng.random_bits(code.n());
  const BitVec bob = corrupt(alice, 0.11, rng);
  const BitVec s = code.syndrome(alice);
  const float channel = bsc_llr(0.11);
  std::vector<float> llr(code.n());
  for (std::size_t v = 0; v < code.n(); ++v) {
    llr[v] = bob.get(v) ? -channel : channel;
  }
  DecoderConfig config;
  config.max_iterations = 30;
  const auto result = decode_syndrome(code, s, llr, config);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 30u);
}

TEST(RateAdapt, PartitionIsExactAndDeterministic) {
  const auto a = derive_adaptation(1000, 100, 50, 42);
  const auto b = derive_adaptation(1000, 100, 50, 42);
  EXPECT_EQ(a.punctured, b.punctured);
  EXPECT_EQ(a.shortened, b.shortened);
  EXPECT_EQ(a.payload, b.payload);
  EXPECT_EQ(a.punctured.size(), 100u);
  EXPECT_EQ(a.shortened.size(), 50u);
  EXPECT_EQ(a.payload.size(), 850u);
  std::vector<bool> seen(1000, false);
  for (const auto v : a.punctured) seen[v] = true;
  for (const auto v : a.shortened) {
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
  for (const auto v : a.payload) {
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
  for (std::size_t i = 0; i < 1000; ++i) EXPECT_TRUE(seen[i]);
}

TEST(RateAdapt, OverBudgetThrows) {
  EXPECT_THROW(derive_adaptation(100, 80, 30, 1), std::invalid_argument);
}

TEST(RateAdapt, PlanHitsEfficiencyTarget) {
  const FramePlan plan = plan_frame(4096, 0.03, 1.25);
  EXPECT_GT(plan.payload_bits, 0u);
  EXPECT_NEAR(plan.predicted_efficiency, 1.25, 0.3);
  const LdpcCode& code = code_by_id(plan.code_id);
  EXPECT_EQ(plan.payload_bits,
            code.n() - plan.n_punctured - plan.n_shortened);
}

TEST(RateAdapt, PlanValidatesInput) {
  EXPECT_THROW(plan_frame(1024, 0.0, 1.2), std::invalid_argument);
  EXPECT_THROW(plan_frame(1024, 0.02, 0.9), std::invalid_argument);
}

class LdpcLocalSweep : public ::testing::TestWithParam<double> {};

TEST_P(LdpcLocalSweep, ReconcilesFrameEndToEnd) {
  const double q = GetParam();
  Xoshiro256 rng(static_cast<std::uint64_t>(q * 1e6));
  Xoshiro256 alice_private(999);

  LdpcReconcilerConfig config;
  config.f_target = 1.3;
  const FramePlan plan = plan_frame(4096, q, config.f_target);
  const BitVec alice = rng.random_bits(plan.payload_bits);
  const BitVec bob = corrupt(alice, q, rng);

  const auto outcome = ldpc_reconcile_local(alice, bob, q, plan, 0xf00d,
                                            config, alice_private);
  ASSERT_TRUE(outcome.success) << "q=" << q;
  EXPECT_EQ(outcome.corrected, alice) << "q=" << q;
  EXPECT_GT(outcome.efficiency, 1.0);
  EXPECT_LT(outcome.efficiency, 2.2) << "q=" << q;
}

INSTANTIATE_TEST_SUITE_P(Qbers, LdpcLocalSweep,
                         ::testing::Values(0.01, 0.02, 0.03, 0.05, 0.07));

TEST(LdpcLocal, BlindRevealRescuesUnderestimatedQber) {
  // Plan for 2% but the channel actually runs at 3.5%: the first decode
  // should fail and blind reveals should rescue the frame.
  Xoshiro256 rng(404);
  Xoshiro256 alice_private(405);
  LdpcReconcilerConfig config;
  config.f_target = 1.15;  // deliberately tight
  const FramePlan plan = plan_frame(4096, 0.02, config.f_target);
  ASSERT_GT(plan.n_punctured, 0u);
  const BitVec alice = rng.random_bits(plan.payload_bits);
  const BitVec bob = corrupt(alice, 0.035, rng);

  const auto outcome = ldpc_reconcile_local(alice, bob, 0.035, plan, 0xbeef,
                                            config, alice_private);
  if (outcome.success) {
    EXPECT_EQ(outcome.corrected, alice);
    // Leak grows beyond the syndrome when blind rounds fire.
    if (outcome.blind_rounds > 0) {
      const LdpcCode& code = code_by_id(plan.code_id);
      EXPECT_GT(outcome.leaked_bits, code.m() - plan.n_punctured);
    }
  }
  // Either way the accounting must be self-consistent.
  EXPECT_GE(outcome.rounds, 1u);
}

TEST(LdpcLocal, LeakAccountingMatchesPlan) {
  Xoshiro256 rng(505);
  Xoshiro256 alice_private(506);
  LdpcReconcilerConfig config;
  const FramePlan plan = plan_frame(4096, 0.03, 1.3);
  const BitVec alice = rng.random_bits(plan.payload_bits);
  const BitVec bob = corrupt(alice, 0.03, rng);
  const auto outcome = ldpc_reconcile_local(alice, bob, 0.03, plan, 0xcafe,
                                            config, alice_private);
  ASSERT_TRUE(outcome.success);
  if (outcome.blind_rounds == 0) {
    const LdpcCode& code = code_by_id(plan.code_id);
    EXPECT_EQ(outcome.leaked_bits, code.m() - plan.n_punctured);
    EXPECT_EQ(outcome.rounds, 1u);
  }
}

TEST(LdpcLocal, PayloadSizeMismatchThrows) {
  Xoshiro256 alice_private(507);
  const FramePlan plan = plan_frame(4096, 0.03, 1.3);
  const BitVec wrong(plan.payload_bits + 1);
  EXPECT_THROW(
      LdpcFrameSender(plan, wrong, 1, alice_private),
      std::invalid_argument);
}

TEST(CascadeVsLdpc, CascadeLeaksLessButTalksMore) {
  // The headline trade-off behind experiment F4.
  Xoshiro256 rng(606);
  const double q = 0.03;
  const FramePlan plan = plan_frame(16384, q, 1.3);
  const BitVec alice = rng.random_bits(plan.payload_bits);
  const BitVec bob = corrupt(alice, q, rng);

  Xoshiro256 alice_private(607);
  LdpcReconcilerConfig ldpc_config;
  const auto ldpc = ldpc_reconcile_local(alice, bob, q, plan, 1, ldpc_config,
                                         alice_private);
  CascadeConfig cascade_config;
  cascade_config.qber_hint = q;
  cascade_config.passes = 6;
  const auto cascade = cascade_reconcile_local(alice, bob, q, cascade_config);

  ASSERT_TRUE(ldpc.success);
  ASSERT_EQ(ldpc.corrected, alice);
  ASSERT_EQ(cascade.corrected, alice);
  EXPECT_LT(cascade.efficiency, ldpc.efficiency);
  EXPECT_GT(cascade.rounds, ldpc.rounds * 5);
}

}  // namespace
}  // namespace qkdpp::reconcile
