// LinkOrchestrator + shared-device arbitration tests: many links over one
// device set deposit into bounded stores without deadlock; the mapper's
// base_load path steers placements away from loaded devices; engine
// construction over a shared set commits its load to the ledger.
#include "service/link_orchestrator.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "hetero/mapper.hpp"

namespace qkdpp::service {
namespace {

OrchestratorConfig small_fleet(std::uint64_t blocks = 2) {
  OrchestratorConfig config;
  // Distinct distances, all short enough that a 2^19-pulse block clears
  // one LDPC frame (longer spans are the examples'/bench's business).
  const double distances[] = {5.0, 10.0, 15.0, 25.0};
  std::uint64_t seed = 1;
  for (const double km : distances) {
    LinkSpec spec;
    spec.name = "link-" + std::to_string(static_cast<int>(km));
    spec.link.channel.length_km = km;
    spec.pulses_per_block = std::size_t{1} << 19;
    spec.blocks = blocks;
    spec.rng_seed = seed++;
    config.links.push_back(std::move(spec));
  }
  return config;
}

TEST(LinkOrchestrator, FourLinksDistillConcurrentlyIntoBoundedStores) {
  OrchestratorConfig config = small_fleet();
  config.store.capacity_bits = 1 << 20;
  LinkOrchestrator orchestrator(std::move(config));
  ASSERT_EQ(orchestrator.link_count(), 4u);

  const auto report = orchestrator.run();
  ASSERT_EQ(report.links.size(), 4u);
  EXPECT_GT(report.blocks_ok, 0u);
  EXPECT_GT(report.secret_bits, 0u);
  EXPECT_GT(report.secret_bits_per_s, 0.0);

  std::uint64_t sum_bits = 0, sum_ok = 0;
  for (std::size_t i = 0; i < report.links.size(); ++i) {
    const auto& link = report.links[i];
    sum_bits += link.secret_bits;
    sum_ok += link.blocks_ok;
    EXPECT_EQ(link.blocks_ok + link.blocks_aborted, 2u) << link.name;
    // Accepted deposits must be drawable from the link's store.
    EXPECT_EQ(orchestrator.key_store(i).bits_available(), link.secret_bits)
        << link.name;
    EXPECT_EQ(link.rejected_keys, 0u) << link.name;  // roomy bound
  }
  EXPECT_EQ(report.secret_bits, sum_bits);
  EXPECT_EQ(report.blocks_ok, sum_ok);
}

TEST(LinkOrchestrator, ShorterLinksYieldMoreSecretBits) {
  // Sanity on the physics across the fleet: per-block secret yield decays
  // with distance (same pulses per block).
  LinkOrchestrator orchestrator(small_fleet());
  const auto report = orchestrator.run();
  ASSERT_EQ(report.links.size(), 4u);
  ASSERT_GT(report.links[0].blocks_ok, 0u);
  EXPECT_GT(report.links[0].secret_bits, report.links[3].secret_bits);
}

TEST(LinkOrchestrator, TightBoundRejectsOverflowWithoutDeadlock) {
  OrchestratorConfig config = small_fleet(3);
  config.store.capacity_bits = 2048;  // far below one block's secret yield
  config.store.on_overflow = pipeline::OverflowPolicy::kReject;
  LinkOrchestrator orchestrator(std::move(config));
  const auto report = orchestrator.run();

  bool any_rejected = false;
  for (std::size_t i = 0; i < report.links.size(); ++i) {
    const auto& link = report.links[i];
    any_rejected |= link.rejected_keys > 0;
    EXPECT_LE(orchestrator.key_store(i).bits_available(), 2048u) << link.name;
  }
  // The metro links certainly distill more than 2048 bits per block.
  EXPECT_TRUE(any_rejected);
}

TEST(LinkOrchestrator, RunIsRepeatableAndAccumulatesStores) {
  OrchestratorConfig config = small_fleet(1);
  config.links.resize(2);
  LinkOrchestrator orchestrator(std::move(config));
  const auto first = orchestrator.run();
  const std::uint64_t after_first = orchestrator.key_store(0).bits_available();
  const auto second = orchestrator.run();
  EXPECT_EQ(orchestrator.key_store(0).bits_available(),
            after_first + second.links[0].secret_bits);
  EXPECT_EQ(first.links[0].blocks_ok + first.links[0].blocks_aborted, 1u);
  EXPECT_EQ(second.links[0].blocks_ok + second.links[0].blocks_aborted, 1u);
}

TEST(LinkOrchestrator, EmptyLinkListRejected) {
  EXPECT_THROW(LinkOrchestrator{OrchestratorConfig{}}, Error);
}

TEST(LinkOrchestrator, SharedSetAccumulatesCommittedLoads) {
  // Engines are built in link order against the shared ledger: every
  // engine's placement must add load, and the final ledger equals the sum
  // of the per-engine stage costs.
  LinkOrchestrator orchestrator(small_fleet());
  const auto& set = orchestrator.device_set();
  const auto committed = set.committed_loads();
  ASSERT_EQ(committed.size(), 4u);  // standard roster

  std::vector<double> expected(committed.size(), 0.0);
  for (std::size_t i = 0; i < orchestrator.link_count(); ++i) {
    const auto& engine = orchestrator.link_engine(i);
    const auto& problem = engine.mapping_problem();
    const auto& assignment = engine.placement().device_of_stage;
    for (std::size_t s = 0; s < assignment.size(); ++s) {
      expected[assignment[s]] += problem.seconds_per_item[s][assignment[s]];
    }
  }
  for (std::size_t d = 0; d < committed.size(); ++d) {
    EXPECT_NEAR(committed[d], expected[d], 1e-12) << "device " << d;
  }
  const double total =
      std::accumulate(committed.begin(), committed.end(), 0.0);
  EXPECT_GT(total, 0.0);
}

TEST(LinkOrchestrator, SharedDevicesAccountWorkFromAllLinks) {
  // After a run, the devices the placements chose have charged busy time
  // from *all* links through the same Device objects.
  LinkOrchestrator orchestrator(small_fleet(1));
  (void)orchestrator.run();
  const auto& set = orchestrator.device_set();
  std::uint64_t launches = 0;
  for (std::size_t d = 0; d < set.size(); ++d) {
    launches += set.device(d).kernels_launched();
  }
  // 4 links x 1 block x 5 stages (aborted blocks may run fewer stages).
  EXPECT_GE(launches, 4u * 3u);
  EXPECT_LE(launches, 4u * 5u);
}

// --- mapper arbitration unit tests -----------------------------------------

hetero::MappingProblem two_stage_two_device() {
  hetero::MappingProblem problem;
  problem.stage_names = {"a", "b"};
  problem.device_names = {"fast", "slow"};
  // Device 0 is better for both stages in isolation.
  problem.seconds_per_item = {{1.0, 3.0}, {1.0, 3.0}};
  return problem;
}

TEST(MapperArbitration, BaseLoadSteersAwayFromLoadedDevice) {
  const auto problem = two_stage_two_device();
  // Unloaded: both stages pack onto the fast device (load 2 < 3).
  const auto free = hetero::optimize_mapping(problem);
  EXPECT_EQ(free.device_of_stage, (std::vector<std::uint32_t>{0, 0}));

  // Another link already committed 2 s/item to the fast device: keeping
  // both stages there costs 4; splitting one onto the slow device costs
  // max(2+1, 3) = 3.
  const auto loaded = hetero::optimize_mapping(problem, {2.0, 0.0});
  EXPECT_NEAR(loaded.bottleneck_load_s, 3.0, 1e-12);
  const auto on_fast = static_cast<int>(loaded.device_of_stage[0] == 0) +
                       static_cast<int>(loaded.device_of_stage[1] == 0);
  EXPECT_EQ(on_fast, 1);
}

TEST(MapperArbitration, ReportedThroughputIncludesBaseLoad) {
  const auto problem = two_stage_two_device();
  const auto result = hetero::optimize_mapping(problem, {0.5, 0.5});
  EXPECT_NEAR(result.bottleneck_load_s, 2.5, 1e-12);  // both on fast: 0.5+2
  EXPECT_NEAR(result.throughput_items_per_s, 1.0 / 2.5, 1e-12);
}

TEST(MapperArbitration, EvaluateWithBaseLoadMatchesManualSum) {
  const auto problem = two_stage_two_device();
  const auto result =
      hetero::evaluate_mapping(problem, {0, 1}, {1.0, 0.25});
  // fast: 1.0 + 1.0 = 2.0; slow: 0.25 + 3.0 = 3.25.
  EXPECT_NEAR(result.bottleneck_load_s, 3.25, 1e-12);
  EXPECT_EQ(result.bottleneck_device, 1u);
}

TEST(MapperArbitration, BaseLoadShapeAndSignValidated) {
  const auto problem = two_stage_two_device();
  EXPECT_THROW(hetero::optimize_mapping(problem, {1.0}), Error);
  EXPECT_THROW(hetero::optimize_mapping(problem, {1.0, -0.5, 0.0}), Error);
}

TEST(MapperArbitration, SecondEngineOverSharedSetShiftsPlacement) {
  // Two identical engines over one shared set: the second is priced
  // against the first's committed load, so its bottleneck (including the
  // base) can only be >= the first's - and the shared ledger grows.
  auto set = std::make_shared<hetero::DeviceSet>();
  engine::PostprocessParams params;
  engine::EngineOptions options;
  options.shared_devices = set;

  engine::PostprocessEngine first(params, options);
  const auto after_first = set->committed_loads();
  engine::PostprocessEngine second(params, options);
  const auto after_second = set->committed_loads();

  EXPECT_GE(second.placement().bottleneck_load_s,
            first.placement().bottleneck_load_s - 1e-15);
  double first_total = 0.0, second_total = 0.0;
  for (std::size_t d = 0; d < after_first.size(); ++d) {
    first_total += after_first[d];
    second_total += after_second[d];
  }
  EXPECT_GT(first_total, 0.0);
  EXPECT_GT(second_total, first_total);
}

}  // namespace
}  // namespace qkdpp::service
