// CRC32C / CRC64 reference-vector and incremental-use tests.
#include "common/crc.hpp"

#include <gtest/gtest.h>

#include <string_view>
#include <vector>

namespace qkdpp {
namespace {

std::vector<std::uint8_t> bytes_of(std::string_view s) {
  return {s.begin(), s.end()};
}

TEST(Crc32c, KnownVectors) {
  // RFC 3720 / common test vectors for CRC32C.
  EXPECT_EQ(crc32c(bytes_of("")), 0x00000000u);
  EXPECT_EQ(crc32c(bytes_of("a")), 0xc1d04330u);
  EXPECT_EQ(crc32c(bytes_of("abc")), 0x364b3fb7u);
  EXPECT_EQ(crc32c(bytes_of("123456789")), 0xe3069283u);
  const std::vector<std::uint8_t> zeros32(32, 0);
  EXPECT_EQ(crc32c(zeros32), 0x8a9136aau);
  const std::vector<std::uint8_t> ff32(32, 0xff);
  EXPECT_EQ(crc32c(ff32), 0x62a8ab43u);
}

TEST(Crc32c, SliceBy8MatchesBytewiseSplit) {
  // Computing over a split buffer with seed chaining equals one-shot.
  const auto data = bytes_of("the quick brown fox jumps over the lazy dog!!");
  const auto full = crc32c(data);
  for (std::size_t cut = 0; cut <= data.size(); ++cut) {
    const std::uint32_t first =
        crc32c(std::span(data).subspan(0, cut));
    const std::uint32_t chained =
        crc32c(std::span(data).subspan(cut), first);
    EXPECT_EQ(chained, full) << "cut=" << cut;
  }
}

TEST(Crc32c, SensitiveToSingleBitFlip) {
  auto data = bytes_of("data integrity check payload");
  const auto base = crc32c(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] ^= 1;
    EXPECT_NE(crc32c(data), base) << i;
    data[i] ^= 1;
  }
}

TEST(Crc64, KnownVector) {
  // CRC-64/XZ (ECMA-182 reflected): check("123456789") = 0x995dc9bbdf1939fa
  EXPECT_EQ(crc64(bytes_of("123456789")), 0x995dc9bbdf1939faULL);
  EXPECT_EQ(crc64(bytes_of("")), 0x0000000000000000ULL);
}

TEST(Crc64, SeedChaining) {
  const auto data = bytes_of("another chained crc payload");
  const auto full = crc64(data);
  const auto first = crc64(std::span(data).subspan(0, 10));
  EXPECT_EQ(crc64(std::span(data).subspan(10), first), full);
}

TEST(Crc64, DistinctFromCrc32OnCollisionCandidates) {
  // Sanity: two different payloads with (contrived) partial similarity
  // produce distinct 64-bit CRCs.
  EXPECT_NE(crc64(bytes_of("payload-A")), crc64(bytes_of("payload-B")));
}

}  // namespace
}  // namespace qkdpp
