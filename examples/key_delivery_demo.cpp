// Key delivery API demo: the ETSI GS QKD 014-shaped service facade over a
// live multi-link orchestrator, driven entirely through serialized JSON
// requests - the exact byte strings an HTTP transport would carry.
//
//   $ ./examples/key_delivery_demo [blocks=2]
//
// Two links distill into their bounded stores; two SAE applications
// (a VPN pair on the metro link, a VoIP pair on the regional link) are
// registered against the service. The master side of each pair requests
// fixed-size keys (enc_keys), the slave side fetches the same keys by
// UUID (dec_keys), and the demo prints each request/response exchange
// plus the error model (unknown SAE -> 401, malformed -> 400,
// exhausted -> 503).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "api/dispatcher.hpp"
#include "api/key_delivery.hpp"
#include "service/link_orchestrator.hpp"

namespace {

/// One serialized round trip, echoed to stdout like a transport log.
qkdpp::api::Response exchange(qkdpp::api::Dispatcher& dispatcher,
                              const qkdpp::api::Request& request) {
  const std::string wire_request = request.to_json().dump();
  const std::string wire_response = dispatcher.dispatch(wire_request);
  std::printf(">> %s\n<< %s\n\n", wire_request.c_str(),
              wire_response.c_str());
  return qkdpp::api::Response::from_json(
      qkdpp::api::Json::parse(wire_response));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qkdpp;

  const std::uint64_t blocks = argc > 1 ? std::atoi(argv[1]) : 2;

  service::OrchestratorConfig config;
  config.store.capacity_bits = 1 << 20;
  const struct {
    const char* name;
    double km;
  } spans[] = {{"metro", 10.0}, {"regional", 25.0}};
  std::uint64_t seed = 7;
  for (const auto& span : spans) {
    service::LinkSpec spec;
    spec.name = span.name;
    spec.link.channel.length_km = span.km;
    spec.pulses_per_block = std::size_t{1} << 19;
    spec.blocks = blocks;
    spec.rng_seed = seed++;
    config.links.push_back(std::move(spec));
  }

  std::printf("distilling %llu blocks on %zu links...\n",
              static_cast<unsigned long long>(blocks), config.links.size());
  service::LinkOrchestrator orchestrator(std::move(config));
  const auto report = orchestrator.run();
  for (const auto& link : report.links) {
    std::printf("  %-9s %llu secret bits in store\n", link.name.c_str(),
                static_cast<unsigned long long>(link.secret_bits));
  }
  if (report.secret_bits == 0) {
    std::printf("no key material distilled\n");
    return 1;
  }

  api::KeyDeliveryService service(orchestrator);
  service.register_pair({"sae-vpn-a", "sae-vpn-b", "metro", 256, 8, 4096,
                         64});
  service.register_pair({"sae-voip-a", "sae-voip-b", "regional", 128, 8,
                         4096, 64});
  api::Dispatcher dispatcher(service);

  std::printf("\n-- status (master side of the VPN pair) --\n");
  auto status = exchange(dispatcher, {"GET", "/api/v1/keys/sae-vpn-b/status",
                                      "sae-vpn-a", {}});
  if (!status.ok()) return 1;

  std::printf("-- enc_keys: master requests 2 x 256-bit keys --\n");
  api::KeyRequest key_request;
  key_request.number = 2;
  key_request.size = 256;
  auto enc = exchange(dispatcher,
                      {"POST", "/api/v1/keys/sae-vpn-b/enc_keys", "sae-vpn-a",
                       key_request.to_json()});
  if (!enc.ok()) return 1;
  const auto master_keys = api::KeyContainer::from_json(enc.body);

  std::printf("-- dec_keys: slave fetches the same keys by UUID --\n");
  api::KeyIdsRequest ids_request;
  for (const auto& key : master_keys.keys) {
    ids_request.key_ids.push_back(key.key_id);
  }
  auto dec = exchange(dispatcher,
                      {"POST", "/api/v1/keys/sae-vpn-a/dec_keys", "sae-vpn-b",
                       ids_request.to_json()});
  if (!dec.ok()) return 1;
  const auto slave_keys = api::KeyContainer::from_json(dec.body);

  bool match = master_keys.keys.size() == slave_keys.keys.size();
  for (std::size_t i = 0; match && i < master_keys.keys.size(); ++i) {
    match = master_keys.keys[i] == slave_keys.keys[i];
  }
  std::printf("master and slave hold identical keys: %s\n\n",
              match ? "yes" : "NO");

  std::printf("-- error model --\n");
  const auto unknown = exchange(
      dispatcher, {"GET", "/api/v1/keys/sae-vpn-b/status", "sae-mallory",
                   {}});
  const auto refetch = exchange(dispatcher, {"POST",
                                             "/api/v1/keys/sae-vpn-a/dec_keys",
                                             "sae-vpn-b",
                                             ids_request.to_json()});
  api::KeyRequest greedy;
  greedy.number = 8;
  greedy.size = 4096;
  api::Response drained;
  do {  // drain the VoIP pair until the store runs dry
    drained = exchange(dispatcher,
                       {"POST", "/api/v1/keys/sae-voip-b/enc_keys",
                        "sae-voip-a", greedy.to_json()});
  } while (drained.ok());

  const bool errors_ok = unknown.status == api::kStatusUnauthorized &&
                         refetch.status == api::kStatusBadRequest &&
                         drained.status == api::kStatusUnavailable;
  std::printf("401 unknown SAE / 400 re-fetch / 503 exhausted: %s\n",
              errors_ok ? "as expected" : "UNEXPECTED");

  return match && errors_ok ? 0 : 1;
}
