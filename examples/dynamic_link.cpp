// Time-varying links with adaptive re-planning: a small fleet rides a
// 24h-compressed diurnal cycle and a fault-injection timeline (QBER burst
// + accelerator hot-remove) over one shared device set.
//
//   $ ./examples/dynamic_link                 # diurnal + fault injection
//   $ ./examples/dynamic_link all [blocks]    # full shipped-scenario matrix
//   $ ./examples/dynamic_link qber-burst 12   # one scenario, 12 blocks
//
// Each link samples its LinkSchedule per block, so attenuation drifts,
// QBER bursts, Eve ramps up and detectors age mid-run; the orchestrator's
// ReplanPolicy watches a sliding window of measured QBER and throughput,
// retunes the reconciler (LDPC <-> Cascade crossover, pass count) and
// re-runs the placement search against the devices' committed load -
// without draining blocks in flight. Device events hot-remove/re-add a
// shared device; placements that still target it abort until the replan
// routes around the hole.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "service/link_orchestrator.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace qkdpp;

/// A fault-injection timeline: a QBER burst riding the device hot-remove
/// window, the compound failure mode an operator actually fears.
sim::ScenarioConfig fault_injection_scenario(std::uint64_t blocks) {
  sim::ScenarioConfig scenario = sim::device_hot_remove_scenario(blocks);
  scenario.name = "fault-injection";
  sim::Perturbation burst;
  burst.kind = sim::PerturbationKind::kQberBurst;
  burst.begin_block = blocks / 3;
  burst.end_block = 2 * blocks / 3;
  burst.magnitude = 0.045;
  scenario.schedule.perturbations.push_back(burst);
  scenario.validate();
  return scenario;
}

int run_scenario(const sim::ScenarioConfig& scenario) {
  service::OrchestratorConfig config;
  config.store.capacity_bits = 1 << 22;
  config.replan = service::ReplanPolicy::adaptive();
  config.device_events = scenario.device_events;

  // A metro and a regional span ride the same weather and share devices.
  struct Span {
    const char* name;
    double km;
  };
  const Span spans[] = {{"metro", 15.0}, {"regional", 35.0}};
  std::uint64_t seed = 5;
  for (const auto& span : spans) {
    service::LinkSpec spec;
    spec.name = span.name;
    spec.link.channel.length_km = span.km;
    spec.pulses_per_block = sim::pulses_for_sifted_target(
        spec.link, 30000.0, std::size_t{1} << 19, std::size_t{1} << 22);
    spec.blocks = scenario.blocks;
    spec.rng_seed = seed++;
    spec.schedule = scenario.schedule;
    config.links.push_back(std::move(spec));
  }

  std::printf("=== scenario %-22s (%llu blocks/link", scenario.name.c_str(),
              static_cast<unsigned long long>(scenario.blocks));
  for (const auto& p : scenario.schedule.perturbations) {
    std::printf(", %s@[%llu,%llu)", sim::to_string(p.kind),
                static_cast<unsigned long long>(p.begin_block),
                static_cast<unsigned long long>(p.end_block));
  }
  for (const auto& event : scenario.device_events) {
    std::printf(", device%zu offline@[%llu,%llu)", event.device_index,
                static_cast<unsigned long long>(event.offline_at_block),
                static_cast<unsigned long long>(event.online_at_block));
  }
  std::printf(") ===\n");

  service::LinkOrchestrator orchestrator(std::move(config));
  const auto report = orchestrator.run();

  std::printf("%-9s | %4s %5s %7s | %6s | %10s %10s | %6s | mapping\n",
              "link", "ok", "abort", "offline", "replan", "secret b",
              "bits/s", "qber");
  for (const auto& link : report.links) {
    std::printf("%-9s | %4llu %5llu %7llu | %6llu | %10llu %10.0f | %5.2f%% |",
                link.name.c_str(),
                static_cast<unsigned long long>(link.blocks_ok),
                static_cast<unsigned long long>(link.blocks_aborted),
                static_cast<unsigned long long>(link.offline_aborts),
                static_cast<unsigned long long>(link.replans),
                static_cast<unsigned long long>(link.secret_bits),
                link.secret_bits_per_s, 100.0 * link.windowed_qber);
    for (const auto& device : link.stage_devices) {
      std::printf(" %s", device.c_str());
    }
    std::printf("\n");
  }
  std::printf("fleet: %llu secret bits in %.2f s = %.0f bits/s\n\n",
              static_cast<unsigned long long>(report.secret_bits),
              report.wall_seconds, report.secret_bits_per_s);
  return report.blocks_ok > 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "";
  const std::uint64_t blocks =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 0;

  std::vector<sim::ScenarioConfig> scenarios;
  if (which.empty()) {
    // The shipped pair: one 24h-compressed diurnal cycle, one compound
    // fault injection.
    scenarios.push_back(sim::diurnal_scenario(blocks ? blocks : 24));
    scenarios.push_back(fault_injection_scenario(blocks ? blocks : 18));
  } else if (which == "all") {
    scenarios = sim::shipped_scenarios(blocks);
    scenarios.push_back(fault_injection_scenario(blocks ? blocks : 18));
  } else if (which == "fault-injection") {
    scenarios.push_back(fault_injection_scenario(blocks ? blocks : 18));
  } else {
    for (auto& scenario : sim::shipped_scenarios(blocks)) {
      if (scenario.name == which) scenarios.push_back(std::move(scenario));
    }
    if (scenarios.empty()) {
      std::fprintf(stderr,
                   "unknown scenario '%s' (try: all, fault-injection, "
                   "diurnal, qber-burst, eve-ramp, detector-degradation, "
                   "device-hot-remove)\n",
                   which.c_str());
      return 2;
    }
  }

  int status = 0;
  for (const auto& scenario : scenarios) {
    status |= run_scenario(scenario);
  }
  return status;
}
