// Metro-network scenario: secret key rate across a city-scale fiber span.
//
// Mirrors the metropolitan deployments QKD testbeds report (Cambridge-style
// 5-50 km spans): sweeps fiber length, runs one post-processing block per
// point with both reconciliation families, and prints an SKR table.
//
//   $ ./examples/metro_link [pulses_log2=21]
#include <cstdio>
#include <cstdlib>

#include "pipeline/offline.hpp"

int main(int argc, char** argv) {
  using namespace qkdpp;

  const int pulses_log2 = argc > 1 ? std::atoi(argv[1]) : 21;
  const std::size_t pulses = std::size_t{1} << pulses_log2;

  std::printf("metro link sweep: 2^%d pulses per block, decoy BB84, "
              "APD detector (eta=20%%, dark=1e-6)\n\n",
              pulses_log2);
  std::printf("%6s | %9s %7s | %11s %8s | %11s %8s\n", "km", "sifted",
              "QBER", "LDPC SKR", "f_EC", "Cascade SKR", "f_EC");
  std::printf("-------+-------------------+----------------------+--------"
              "--------------\n");

  for (const double km : {5.0, 10.0, 15.0, 25.0, 35.0, 50.0}) {
    pipeline::OfflineConfig config;
    config.link.channel.length_km = km;
    config.pulses_per_block = pulses;

    Xoshiro256 rng_ldpc(static_cast<std::uint64_t>(km * 1000) + 1);
    const auto ldpc =
        pipeline::OfflinePipeline(config).process_block(1, rng_ldpc);

    config.method = protocol::ReconcileMethod::kCascade;
    config.cascade.passes = 6;
    Xoshiro256 rng_cascade(static_cast<std::uint64_t>(km * 1000) + 1);
    const auto cascade =
        pipeline::OfflinePipeline(config).process_block(1, rng_cascade);

    auto skr_cell = [](const pipeline::BlockOutcome& outcome) {
      return outcome.success ? outcome.skr_per_pulse() : 0.0;
    };
    std::printf("%6.0f | %9zu %6.2f%% | %11.2e %8.2f | %11.2e %8.2f\n", km,
                ldpc.sifted_bits, ldpc.qber_estimate * 100, skr_cell(ldpc),
                ldpc.success ? ldpc.efficiency : 0.0, skr_cell(cascade),
                cascade.success ? cascade.efficiency : 0.0);
    if (!ldpc.success) {
      std::printf("       | ldpc aborted: %s\n", ldpc.abort_reason.c_str());
    }
    if (!cascade.success) {
      std::printf("       | cascade aborted: %s\n",
                  cascade.abort_reason.c_str());
    }
  }
  std::printf("\nCascade leaks less (lower f_EC -> higher SKR) but costs "
              "hundreds of round-trips; LDPC is one-way. See "
              "bench_cascade/bench_pipeline_e2e for the full trade-off.\n");
  return 0;
}
