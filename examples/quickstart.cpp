// Quickstart: distill a secret key from a simulated 10 km metro link.
//
//   $ ./examples/quickstart
//
// Runs one block of 2^20 pulses through the full post-processing chain
// (sift -> estimate -> LDPC reconcile -> verify -> Toeplitz amplify) and
// prints the distillation funnel plus the first bits of the key.
#include <cstdio>

#include "pipeline/offline.hpp"

int main() {
  using namespace qkdpp;

  pipeline::OfflineConfig config;
  config.link.channel.length_km = 10.0;
  config.link.channel.misalignment = 0.015;
  config.pulses_per_block = 1 << 20;

  pipeline::OfflinePipeline qkd(config);
  Xoshiro256 rng(/*seed=*/2024);

  std::printf("qkdpp quickstart: %.0f km fiber, %.1f dB loss, QBER ~%.1f%%\n",
              config.link.channel.length_km,
              config.link.channel.length_km *
                      config.link.channel.attenuation_db_per_km +
                  config.link.channel.insertion_loss_db,
              config.link.channel.misalignment * 100);

  const auto block = qkd.process_block(/*block_id=*/1, rng);
  if (!block.success) {
    std::printf("block aborted: %s\n", block.abort_reason.c_str());
    return 1;
  }

  std::printf("\n  %-28s %12zu\n", "pulses sent", block.pulses);
  std::printf("  %-28s %12zu\n", "detections", block.detections);
  std::printf("  %-28s %12zu\n", "sifted bits", block.sifted_bits);
  std::printf("  %-28s %12zu\n", "key candidates (signal)",
              block.key_candidate_bits);
  std::printf("  %-28s %12.3f%%\n", "estimated QBER",
              block.qber_estimate * 100);
  std::printf("  %-28s %12zu\n", "reconciled bits", block.reconciled_bits);
  std::printf("  %-28s %12llu  (f = %.2f)\n", "EC leakage (bits)",
              static_cast<unsigned long long>(block.leak_ec_bits),
              block.efficiency);
  std::printf("  %-28s %12zu\n", "final secret bits", block.final_key_bits);
  std::printf("  %-28s %12.2e\n", "secret key rate / pulse",
              block.skr_per_pulse());

  std::printf("\n  key[0:64] = %s\n", block.final_key.to_string(64).c_str());
  std::printf("\npost-processing time: %.1f ms (sift %.1f, estimate %.1f, "
              "reconcile %.1f, verify %.1f, amplify %.1f)\n",
              block.timings.post_processing_total() * 1e3,
              block.timings.sift * 1e3, block.timings.estimate * 1e3,
              block.timings.reconcile * 1e3, block.timings.verify * 1e3,
              block.timings.amplify * 1e3);
  return 0;
}
