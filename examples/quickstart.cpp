// Quickstart: distill a secret key from a simulated 10 km metro link with
// the PostprocessEngine API.
//
//   $ ./examples/quickstart
//
// Simulates one block of 2^20 pulses, lets the engine's mapper place the
// five post-processing stages (sift -> estimate -> LDPC reconcile ->
// verify -> Toeplitz amplify) over the heterogeneous device roster, runs
// the block, and prints the chosen placement, the distillation funnel and
// the first bits of the key.
#include <cstdio>

#include "engine/engine.hpp"
#include "engine/sim_adapter.hpp"
#include "sim/bb84.hpp"

int main() {
  using namespace qkdpp;

  sim::LinkConfig link;
  link.channel.length_km = 10.0;
  link.channel.misalignment = 0.015;

  std::printf("qkdpp quickstart: %.0f km fiber, %.1f dB loss, QBER ~%.1f%%\n",
              link.channel.length_km,
              link.channel.length_km * link.channel.attenuation_db_per_km +
                  link.channel.insertion_loss_db,
              link.channel.misalignment * 100);

  // --- the quantum layer: one block of raw detections ----------------------
  Xoshiro256 rng(/*seed=*/2024);
  const auto record = sim::Bb84Simulator(link).run(1 << 20, rng);
  const engine::BlockInput input = engine::make_block_input(record, 1);

  // --- the post-processing engine: mapper-placed stage chain ---------------
  engine::PostprocessParams params;
  engine::PostprocessEngine qkd(params, engine::EngineOptions::standard());

  std::printf("\nstage placement (optimizer, predicted %.1f blocks/s):\n",
              qkd.placement().predicted_items_per_s);
  for (std::size_t s = 0; s < qkd.placement().stage_names.size(); ++s) {
    std::printf("  %-10s -> %s\n", qkd.placement().stage_names[s].c_str(),
                qkd.placement().device_of(s).c_str());
  }

  const auto block = qkd.process_block(input, /*block_id=*/1, rng);
  if (!block.success) {
    std::printf("block aborted: %s\n", block.abort_reason.c_str());
    return 1;
  }

  std::printf("\n  %-28s %12zu\n", "pulses sent", block.pulses);
  std::printf("  %-28s %12zu\n", "detections", block.detections);
  std::printf("  %-28s %12zu\n", "sifted bits", block.sifted_bits);
  std::printf("  %-28s %12zu\n", "key candidates (signal)",
              block.key_candidate_bits);
  std::printf("  %-28s %12.3f%%\n", "estimated QBER",
              block.qber_estimate * 100);
  std::printf("  %-28s %12zu\n", "reconciled bits", block.reconciled_bits);
  std::printf("  %-28s %12llu  (f = %.2f)\n", "EC leakage (bits)",
              static_cast<unsigned long long>(block.leak_ec_bits),
              block.efficiency);
  std::printf("  %-28s %12zu\n", "final secret bits", block.final_key_bits);
  std::printf("  %-28s %12.2e\n", "secret key rate / pulse",
              block.skr_per_pulse());

  std::printf("\n  key[0:64] = %s\n", block.final_key.to_string(64).c_str());
  std::printf("\ncharged post-processing time: %.1f ms (sift %.1f, "
              "estimate %.1f, reconcile %.1f, verify %.1f, amplify %.1f)\n",
              block.timings.post_processing_total() * 1e3,
              block.timings.sift * 1e3, block.timings.estimate * 1e3,
              block.timings.reconcile * 1e3, block.timings.verify * 1e3,
              block.timings.amplify * 1e3);
  std::printf("(cpu stages charge measured wall time; gpu-sim/fpga-sim "
              "stages charge modeled accelerator time)\n");
  return 0;
}
