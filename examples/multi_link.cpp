// Multi-link scenario: one post-processing host serving a small QKD
// network - metro access spans, a regional backbone and a WAN span -
// concurrently over one shared device set, distilling into bounded
// ETSI-style key stores.
//
//   $ ./examples/multi_link [blocks=3]
//
// Each link's engine is placed by the mapper *against the load the other
// links already committed* to the shared devices, then all links run
// concurrently. Blocks accumulate to ~40k sifted bits per link (longer,
// lossier spans emit more pulses), and the stores are deliberately tiny
// so the bound is visible: overflowing keys are rejected with a statistic
// instead of growing the store without limit.
#include <cstdio>
#include <cstdlib>

#include "service/link_orchestrator.hpp"

int main(int argc, char** argv) {
  using namespace qkdpp;

  const std::uint64_t blocks = argc > 1 ? std::atoi(argv[1]) : 3;

  service::OrchestratorConfig config;
  config.store.capacity_bits = 1 << 14;  // 16 kbit per link pair
  config.store.on_overflow = pipeline::OverflowPolicy::kReject;

  struct Span {
    const char* name;
    double km;
  };
  const Span spans[] = {{"metro-a", 5.0},
                        {"metro-b", 15.0},
                        {"regional", 35.0},
                        {"backbone", 50.0},
                        {"wan", 75.0}};
  std::uint64_t seed = 1;
  for (const auto& span : spans) {
    service::LinkSpec spec;
    spec.name = span.name;
    spec.link.channel.length_km = span.km;
    spec.pulses_per_block = sim::pulses_for_sifted_target(
        spec.link, 40000.0, std::size_t{1} << 20, std::size_t{1} << 23);
    spec.blocks = blocks;
    spec.rng_seed = seed++;
    config.links.push_back(std::move(spec));
  }

  std::printf("multi-link orchestrator: %zu links, blocks scaled to ~40k "
              "sifted bits, %llu blocks each, shared 4-device set, "
              "16 kbit stores\n\n",
              config.links.size(),
              static_cast<unsigned long long>(blocks));

  service::LinkOrchestrator orchestrator(std::move(config));

  std::printf("placement (arbitrated in link order over shared devices):\n");
  for (std::size_t i = 0; i < orchestrator.link_count(); ++i) {
    const auto& placement = orchestrator.link_engine(i).placement();
    std::printf("  %-9s |", orchestrator.link_spec(i).name.c_str());
    for (std::size_t s = 0; s < placement.stage_names.size(); ++s) {
      std::printf(" %s->%s", placement.stage_names[s].c_str(),
                  placement.device_of(s).c_str());
    }
    std::printf("\n");
  }

  const auto report = orchestrator.run();

  std::printf("\n%-9s | %6s | %4s %5s | %10s %12s | %9s %9s\n", "link", "km",
              "ok", "abort", "secret b", "bits/s", "in store", "rejected");
  for (std::size_t i = 0; i < report.links.size(); ++i) {
    const auto& link = report.links[i];
    std::printf("%-9s | %6.0f | %4llu %5llu | %10llu %12.0f | %9llu %9llu\n",
                link.name.c_str(), link.length_km,
                static_cast<unsigned long long>(link.blocks_ok),
                static_cast<unsigned long long>(link.blocks_aborted),
                static_cast<unsigned long long>(link.secret_bits),
                link.secret_bits_per_s,
                static_cast<unsigned long long>(
                    orchestrator.key_store(i).bits_available()),
                static_cast<unsigned long long>(link.rejected_bits));
  }
  std::printf("\naggregate: %llu secret bits in %.2f s = %.0f bits/s "
              "(%.2f blocks/s) across %llu ok / %llu aborted blocks\n",
              static_cast<unsigned long long>(report.secret_bits),
              report.wall_seconds, report.secret_bits_per_s,
              report.blocks_per_s,
              static_cast<unsigned long long>(report.blocks_ok),
              static_cast<unsigned long long>(report.blocks_aborted));

  // Drain one store through the ETSI-style two-endpoint pattern to show
  // the per-consumer ledger.
  auto& store = orchestrator.key_store(0);
  while (store.get_key("sae-app").has_value()) {
  }
  std::printf("\nstore[0] after consumer drain: %zu keys left, "
              "%llu bits drawn by 'sae-app', %llu bits rejected at the "
              "bound\n",
              store.keys_available(),
              static_cast<unsigned long long>(store.consumed_by("sae-app")),
              static_cast<unsigned long long>(store.rejected_bits()));
  return report.blocks_ok > 0 ? 0 : 1;
}
