// WAN scenario: reconciliation choice under classical-channel latency.
//
//   $ ./examples/wan_link
//
// Runs the *same* two-party post-processing session over in-process
// channels whose latency model mimics metro (0.25 ms), intercity (5 ms)
// and intercontinental (80 ms) links, and reports the modeled classical-
// channel time each reconciliation family spends. Cascade's many
// round-trips are free in a lab and crippling across an ocean - the reason
// one-way LDPC wins WAN deployments despite leaking more.
#include <cstdio>
#include <future>

#include "pipeline/session.hpp"
#include "sim/bb84.hpp"

int main() {
  using namespace qkdpp;

  sim::LinkConfig link;
  link.channel.length_km = 25.0;
  Xoshiro256 link_rng(42);
  const auto record = sim::Bb84Simulator(link).run(1 << 20, link_rng);

  protocol::AliceTransmitLog alice_log{record.alice_bits, record.alice_bases,
                                       record.alice_class};
  pipeline::BobDetections bob_view;
  bob_view.block_id = 1;
  bob_view.n_pulses = record.n_pulses;
  bob_view.detected_idx = record.detected_idx;
  bob_view.bits = record.bob_bits;
  bob_view.bases = record.bob_bases;

  struct Scenario {
    const char* name;
    double latency_s;
  };
  const Scenario scenarios[] = {
      {"metro (0.25 ms)", 0.25e-3},
      {"intercity (5 ms)", 5e-3},
      {"intercontinental (80 ms)", 80e-3},
  };

  std::printf("WAN reconciliation comparison, 25 km quantum link, one "
              "2^20-pulse block\n\n");
  std::printf("%26s | %10s | %8s %8s %12s | %10s\n", "classical channel",
              "method", "key bits", "msgs", "chan time", "leak");

  for (const auto& scenario : scenarios) {
    for (const auto method : {protocol::ReconcileMethod::kLdpc,
                              protocol::ReconcileMethod::kCascade}) {
      pipeline::SessionConfig config;
      config.method = method;

      protocol::ChannelModel model;
      model.latency_s = scenario.latency_s;
      model.bandwidth_bps = 1e9;
      auto [alice_channel, bob_channel] = protocol::make_channel_pair(model);

      auto alice_future = std::async(std::launch::async, [&] {
        Xoshiro256 rng(7);
        return pipeline::run_alice_session(*alice_channel, alice_log, 1,
                                           config, rng);
      });
      const auto bob =
          pipeline::run_bob_session(*bob_channel, bob_view, config);
      const auto alice = alice_future.get();

      if (!alice.success || !bob.success) {
        std::printf("%26s | %10s | aborted: %s\n", scenario.name,
                    method == protocol::ReconcileMethod::kLdpc ? "ldpc"
                                                               : "cascade",
                    alice.abort_reason.c_str());
        continue;
      }
      // Both directions' modeled channel time.
      const double channel_time =
          alice.channel.virtual_time_s + bob.channel.virtual_time_s;
      std::printf("%26s | %10s | %8zu %8llu %10.2f s | %10llu\n",
                  scenario.name,
                  method == protocol::ReconcileMethod::kLdpc ? "ldpc"
                                                             : "cascade",
                  alice.final_key.size(),
                  static_cast<unsigned long long>(
                      alice.channel.messages_sent +
                      bob.channel.messages_sent),
                  channel_time,
                  static_cast<unsigned long long>(alice.leak_ec_bits));
    }
  }
  std::printf("\nCascade's interactivity costs ~100x more messages; at 80 ms "
              "RTT that is the difference between sub-second and "
              "minutes-per-block. LDPC leaks more bits but sends one "
              "syndrome per frame.\n");
  return 0;
}
