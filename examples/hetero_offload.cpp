// Heterogeneous offload walkthrough: probe per-stage costs on every
// device, run the mapping optimizer, and stream blocks through the chosen
// placement.
//
//   $ ./examples/hetero_offload
//
// Prints the stage x device cost matrix (CPU columns measured, GPU/FPGA
// columns modeled - see DESIGN.md hardware substitution), the optimizer's
// placement vs naive baselines, and the realized pipeline statistics.
#include <cstdio>
#include <deque>
#include <vector>

#include "hetero/kernels.hpp"
#include "hetero/mapper.hpp"
#include "hetero/stream_pipeline.hpp"
#include "reconcile/reconciler.hpp"
#include "privacy/toeplitz.hpp"

namespace {

using namespace qkdpp;

struct Workload {
  const reconcile::LdpcCode* code;
  BitVec syndrome;
  std::vector<float> llr;
  BitVec pa_input;
  BitVec pa_seed;
};

Workload make_workload() {
  Workload w;
  w.code = &reconcile::code_by_id(12);  // n=16384, rate 0.75
  Xoshiro256 rng(7);
  const BitVec alice = rng.random_bits(w.code->n());
  BitVec bob = alice;
  for (std::size_t i = 0; i < bob.size(); ++i) {
    if (rng.bernoulli(0.03)) bob.flip(i);
  }
  w.syndrome = w.code->syndrome(alice);
  const float channel = reconcile::bsc_llr(0.03);
  w.llr.resize(w.code->n());
  for (std::size_t v = 0; v < w.code->n(); ++v) {
    w.llr[v] = bob.get(v) ? -channel : channel;
  }
  w.pa_input = rng.random_bits(1 << 16);
  w.pa_seed = rng.random_bits((1 << 16) + (1 << 15) - 1);
  return w;
}

/// Probe: run each stage once per device and record charged seconds.
double probe_decode(hetero::Device& device, const Workload& w) {
  std::vector<reconcile::DecodeResult> results;
  const hetero::DecodeJob job{&w.syndrome, &w.llr};
  return hetero::timed_ldpc_decode(device, *w.code, std::span(&job, 1),
                                   reconcile::DecoderConfig{}, results);
}

double probe_pa(hetero::Device& device, const Workload& w) {
  BitVec out;
  return hetero::timed_toeplitz(device, w.pa_input, w.pa_seed, 1 << 15, out);
}

double probe_auth(hetero::Device& device, const Workload& w) {
  const auto bytes = w.pa_input.to_bytes();
  U128 tag;
  return hetero::timed_poly_tag(device, bytes, 42, tag);
}

}  // namespace

int main() {
  using namespace qkdpp;

  ThreadPool pool(2);
  std::deque<hetero::Device> devices;  // Device is pinned (owns a mutex)
  devices.emplace_back(hetero::cpu_scalar_props());
  devices.emplace_back(hetero::cpu_parallel_props(pool.thread_count()), &pool);
  devices.emplace_back(hetero::gpu_sim_props(), &pool);
  devices.emplace_back(hetero::fpga_sim_props(), &pool);

  const Workload workload = make_workload();

  hetero::MappingProblem problem;
  problem.stage_names = {"ldpc-decode", "privacy-amp", "auth-tag"};
  for (const auto& device : devices) {
    problem.device_names.push_back(device.name());
  }
  std::printf("probing stage costs (seconds per item)...\n\n%14s", "");
  for (const auto& device : devices) std::printf(" %12s", device.name().c_str());
  std::printf("\n");

  using Probe = double (*)(hetero::Device&, const Workload&);
  const Probe probes[] = {probe_decode, probe_pa, probe_auth};
  for (std::size_t s = 0; s < problem.stage_names.size(); ++s) {
    std::vector<double> row;
    std::printf("%14s", problem.stage_names[s].c_str());
    for (auto& device : devices) {
      const double seconds = probes[s](device, workload);
      row.push_back(seconds);
      std::printf(" %12.6f", seconds);
    }
    std::printf("\n");
    problem.seconds_per_item.push_back(std::move(row));
  }

  const auto best = hetero::optimize_mapping(problem);
  const auto all_cpu = hetero::fixed_mapping(problem, 0);
  const auto greedy = hetero::greedy_mapping(problem);

  std::printf("\noptimized mapping:\n");
  for (std::size_t s = 0; s < problem.stage_names.size(); ++s) {
    std::printf("  %-14s -> %s\n", problem.stage_names[s].c_str(),
                problem.device_names[best.device_of_stage[s]].c_str());
  }
  std::printf("\npredicted pipeline throughput (items/s):\n");
  std::printf("  %-22s %10.1f\n", "all cpu-scalar", all_cpu.throughput_items_per_s);
  std::printf("  %-22s %10.1f\n", "greedy per-stage", greedy.throughput_items_per_s);
  std::printf("  %-22s %10.1f\n", "optimizer", best.throughput_items_per_s);

  // Stream 32 blocks through the optimized placement.
  struct Item {
    int id;
  };
  std::vector<hetero::StreamPipeline<Item>::Stage> stages;
  for (std::size_t s = 0; s < problem.stage_names.size(); ++s) {
    hetero::Device& device = devices[best.device_of_stage[s]];
    const Probe probe = probes[s];
    stages.push_back({problem.stage_names[s], &device,
                      [probe, &device, &workload](Item&) {
                        return probe(device, workload);
                      }});
  }
  hetero::StreamPipeline<Item> stream(std::move(stages), /*queue=*/4);
  Stopwatch stopwatch;
  for (int i = 0; i < 32; ++i) stream.push({i});
  stream.finish();
  const double wall = stopwatch.seconds();

  std::printf("\nstreamed 32 blocks in %.3f s (%.1f items/s wall)\n", wall,
              32.0 / wall);
  for (const auto& stage : stream.stats()) {
    std::printf("  %-14s items=%llu charged=%.4fs wall=%.4fs\n",
                stage.name.c_str(),
                static_cast<unsigned long long>(stage.items),
                stage.charged_seconds, stage.busy_seconds);
  }
  std::printf("\nNote: gpu-sim / fpga-sim charge *modeled* time (analytic "
              "device model); cpu rows are measured wall time.\n");
  return 0;
}
