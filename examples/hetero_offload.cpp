// Heterogeneous offload walkthrough on the PostprocessEngine API: inspect
// the stage x device cost matrix the engine priced at construction, compare
// the optimizer's placement against naive baselines, then push a batch of
// blocks through submit_block() futures and read the per-device ledger.
//
//   $ ./examples/hetero_offload
//
// CPU columns are priced with the same analytic model the simulated
// accelerators use (see DESIGN.md hardware substitution); at run time CPU
// stages charge measured wall-clock while gpu-sim/fpga-sim charge modeled
// time - the key bits are identical on every placement.
#include <cstdio>
#include <future>
#include <vector>

#include "engine/engine.hpp"
#include "engine/sim_adapter.hpp"
#include "hetero/mapper.hpp"
#include "sim/bb84.hpp"

namespace {

using namespace qkdpp;

engine::BlockInput simulate_block(std::uint64_t block_id, std::uint64_t seed) {
  sim::LinkConfig link;
  link.channel.length_km = 25.0;
  Xoshiro256 rng(seed);
  const auto record = sim::Bb84Simulator(link).run(1 << 19, rng);
  return engine::make_block_input(record, block_id);
}

}  // namespace

int main() {
  using namespace qkdpp;

  engine::PostprocessParams params;
  engine::PostprocessEngine qkd(params, engine::EngineOptions::standard());
  const auto& problem = qkd.mapping_problem();

  std::printf("modeled stage costs (seconds per block):\n\n%12s", "");
  for (const auto& device : problem.device_names) {
    std::printf(" %12s", device.c_str());
  }
  std::printf("\n");
  for (std::size_t s = 0; s < problem.stage_names.size(); ++s) {
    std::printf("%12s", problem.stage_names[s].c_str());
    for (const double cost : problem.seconds_per_item[s]) {
      if (cost >= hetero::kInfeasible) {
        std::printf(" %12s", "-");
      } else {
        std::printf(" %12.6f", cost);
      }
    }
    std::printf("\n");
  }

  const auto& placement = qkd.placement();
  std::printf("\noptimized mapping:\n");
  for (std::size_t s = 0; s < placement.stage_names.size(); ++s) {
    std::printf("  %-10s -> %s\n", placement.stage_names[s].c_str(),
                placement.device_of(s).c_str());
  }

  const auto all_cpu = hetero::fixed_mapping(problem, 0);
  const auto greedy = hetero::greedy_mapping(problem);
  std::printf("\npredicted pipeline throughput (blocks/s):\n");
  std::printf("  %-22s %10.1f\n", "all cpu-scalar",
              all_cpu.throughput_items_per_s);
  std::printf("  %-22s %10.1f\n", "greedy per-stage",
              greedy.throughput_items_per_s);
  std::printf("  %-22s %10.1f\n", "optimizer",
              placement.predicted_items_per_s);

  // --- batch submission through the futures entry point --------------------
  // Simulate the raw material first so the stopwatch times only the
  // engine's post-processing, not the quantum-layer simulation.
  constexpr int kBlocks = 8;
  std::vector<engine::BlockInput> inputs;
  inputs.reserve(kBlocks);
  for (int b = 0; b < kBlocks; ++b) {
    inputs.push_back(simulate_block(b, 90 + b));
  }
  std::vector<std::future<engine::BlockOutcome>> futures;
  futures.reserve(kBlocks);
  Stopwatch stopwatch;
  for (int b = 0; b < kBlocks; ++b) {
    futures.push_back(qkd.submit_block(std::move(inputs[b]), b, 700 + b));
  }
  std::size_t secret_bits = 0;
  int succeeded = 0;
  for (auto& future : futures) {
    const auto outcome = future.get();
    if (outcome.success) {
      ++succeeded;
      secret_bits += outcome.final_key_bits;
    }
  }
  const double wall = stopwatch.seconds();

  std::printf("\nprocessed %d/%d blocks in %.3f s (%.1f blocks/s wall), "
              "%zu secret bits\n",
              succeeded, kBlocks, wall, kBlocks / wall, secret_bits);
  std::printf("\nper-device ledger (charged time):\n");
  for (const auto& report : qkd.device_report()) {
    std::printf("  %-14s kernels=%llu charged=%.4fs\n", report.name.c_str(),
                static_cast<unsigned long long>(report.kernels_launched),
                report.busy_seconds);
  }
  std::printf("\nNote: gpu-sim / fpga-sim charge *modeled* time (analytic "
              "device model); cpu devices charge measured wall time.\n");
  return 0;
}
