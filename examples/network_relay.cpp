// Trusted-node key relay demo: ETSI key delivery between SAEs on
// NON-adjacent nodes, over a five-node network of live QKD links, with an
// operator-forced outage re-routed around mid-stream.
//
//   $ ./examples/network_relay [blocks=2]
//
//        a ---- b ---- d        preferred route: 2 hops (ab, bd)
//         \          /
//          c ------ e           backup route: 3 hops (ac, ce, ed)
//
// Every span is a real orchestrator link that distills its own key; the
// relay carries the end-to-end key hop by hop under one-time pads cut
// from each span's store (so nodes b - or c and e - see the key: they are
// *trusted* nodes by construction). The SAE pair talks to the same JSON
// dispatcher endpoints an adjacent pair would - the network is invisible
// at the API.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "api/dispatcher.hpp"
#include "api/key_delivery.hpp"
#include "network/delivery.hpp"
#include "network/topology.hpp"
#include "service/link_orchestrator.hpp"

namespace {

/// One serialized round trip, echoed to stdout like a transport log.
qkdpp::api::Response exchange(qkdpp::api::Dispatcher& dispatcher,
                              const qkdpp::api::Request& request) {
  const std::string wire_request = request.to_json().dump();
  const std::string wire_response = dispatcher.dispatch(wire_request);
  std::printf(">> %s\n<< %.200s%s\n\n", wire_request.c_str(),
              wire_response.c_str(),
              wire_response.size() > 200 ? "..." : "");
  return qkdpp::api::Response::from_json(
      qkdpp::api::Json::parse(wire_response));
}

std::string route_names(const qkdpp::network::Topology& topology,
                        const qkdpp::network::Route& route) {
  std::string text;
  for (const std::size_t node : route.nodes) {
    if (!text.empty()) text += " -> ";
    text += topology.node(node).name;
  }
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qkdpp;

  const std::uint64_t blocks = argc > 1 ? std::atoi(argv[1]) : 2;

  service::OrchestratorConfig config;
  config.store.capacity_bits = 1 << 20;
  const struct {
    const char* name;
    double km;
  } spans[] = {{"ab", 5.0}, {"bd", 6.0}, {"ac", 8.0}, {"ce", 9.0},
               {"ed", 7.0}};
  std::uint64_t seed = 21;
  for (const auto& span : spans) {
    service::LinkSpec spec;
    spec.name = span.name;
    spec.link.channel.length_km = span.km;
    spec.pulses_per_block = std::size_t{1} << 19;
    spec.blocks = blocks;
    spec.rng_seed = seed++;
    config.links.push_back(std::move(spec));
  }

  std::printf("distilling %llu blocks on %zu links...\n",
              static_cast<unsigned long long>(blocks), config.links.size());
  service::LinkOrchestrator orchestrator(std::move(config));
  const auto report = orchestrator.run();
  for (const auto& link : report.links) {
    std::printf("  %-3s %llu secret bits in store\n", link.name.c_str(),
                static_cast<unsigned long long>(link.secret_bits));
  }
  if (report.secret_bits == 0) {
    std::printf("no key material distilled\n");
    return 1;
  }

  std::printf(
      "\ntopology (all nodes trusted):\n"
      "     a ---- b ---- d\n"
      "      \\          /\n"
      "       c ------ e\n\n");
  network::Topology topology(orchestrator);
  for (const char* node : {"a", "b", "c", "d", "e"}) topology.add_node(node);
  const std::size_t bd = [&] {
    topology.add_edge("a", "b", "ab");
    const std::size_t edge = topology.add_edge("b", "d", "bd");
    topology.add_edge("a", "c", "ac");
    topology.add_edge("c", "e", "ce");
    topology.add_edge("e", "d", "ed");
    return edge;
  }();

  api::KeyDeliveryService service(orchestrator);
  network::NetworkDelivery delivery(topology, service);
  api::SaePair pair;
  pair.master_sae_id = "sae-app-a";
  pair.slave_sae_id = "sae-app-d";
  pair.default_key_size = 256;
  pair.max_key_per_request = 8;
  // Chunk == one request's worth: every enc_keys call visibly re-routes
  // (a bigger chunk would buffer ahead and hide the failover below).
  network::RelaySourceConfig source_config;
  source_config.chunk_bits = 512;
  delivery.register_pair(pair, "a", "d", source_config);
  api::Dispatcher dispatcher(service);

  std::printf("-- status: master on node a, slave on node d (3 hops apart)\n");
  const auto status = exchange(
      dispatcher, {"GET", "/api/v1/keys/sae-app-d/status", "sae-app-a", {}});
  if (!status.ok()) return 1;

  auto fetch_and_check = [&](const char* phase) -> bool {
    std::printf("-- enc_keys (%s): master requests 2 x 256-bit keys\n",
                phase);
    api::KeyRequest key_request;
    key_request.number = 2;
    key_request.size = 256;
    const auto enc = exchange(dispatcher,
                              {"POST", "/api/v1/keys/sae-app-d/enc_keys",
                               "sae-app-a", key_request.to_json()});
    if (!enc.ok()) return false;
    const auto master_keys = api::KeyContainer::from_json(enc.body);

    std::printf("-- dec_keys (%s): slave fetches the same keys by UUID\n",
                phase);
    api::KeyIdsRequest ids;
    for (const auto& key : master_keys.keys) {
      ids.key_ids.push_back(key.key_id);
    }
    const auto dec = exchange(dispatcher,
                              {"POST", "/api/v1/keys/sae-app-a/dec_keys",
                               "sae-app-d", ids.to_json()});
    if (!dec.ok()) return false;
    const auto slave_keys = api::KeyContainer::from_json(dec.body);
    if (master_keys.keys != slave_keys.keys) {
      std::printf("MISMATCH: slave keys differ from master keys\n");
      return false;
    }
    const auto source = delivery.source("sae-app-a", "sae-app-d");
    const auto stats = source->stats();
    if (!stats.last_route.has_value()) return false;
    std::printf("route: %s (%llu e2e bits so far)\n\n",
                route_names(topology, *stats.last_route).c_str(),
                static_cast<unsigned long long>(stats.relayed_bits));
    return true;
  };

  if (!fetch_and_check("via b")) return 1;
  const auto source = delivery.source("sae-app-a", "sae-app-d");
  const auto before = source->stats().last_route;

  std::printf("== operator takes the b-d span down (admin outage) ==\n\n");
  topology.set_admin_up(bd, false);
  if (!fetch_and_check("re-routed")) return 1;
  const auto after = source->stats().last_route;

  const bool rerouted = before.has_value() && after.has_value() &&
                        !(*before == *after) && after->hops() == 3;
  std::printf("failover: [%s] => [%s]: %s\n",
              before ? route_names(topology, *before).c_str() : "?",
              after ? route_names(topology, *after).c_str() : "?",
              rerouted ? "re-routed as expected" : "UNEXPECTED");

  // Conservation self-check: every bit the relay drew from any span store
  // is inside a delivered key or buffered in that span's tap.
  bool conserved = true;
  for (std::size_t e = 0; e < topology.edge_count(); ++e) {
    const auto& store = orchestrator.key_store(topology.edge(e).link);
    conserved = conserved &&
                store.consumed_by(delivery.relay().consumer_name(e)) ==
                    delivery.relay().consumed_bits(e) +
                        delivery.relay().buffered_bits(e);
  }
  std::printf("per-span conservation (store draws == delivered + buffered): "
              "%s\n",
              conserved ? "exact" : "VIOLATED");

  return rerouted && conserved ? 0 : 1;
}
