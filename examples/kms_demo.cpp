// KMS + two-party session demo: distill keys over an authenticated channel
// and consume them through the ETSI-014-style key store.
//
//   $ ./examples/kms_demo
//
// Alice and Bob run real post-processing sessions on two threads over an
// in-process classical channel wrapped with Wegman-Carter authentication.
// Distilled keys land in per-endpoint KeyStores; the demo then plays a
// secure-application pair: one side requests a key (get_key), tells the
// other its id, the peer fetches the same key (get_key_with_id), and a
// message crosses one-time-pad encrypted.
#include <cstdio>
#include <future>
#include <string>

#include "pipeline/kms.hpp"
#include "pipeline/session.hpp"
#include "protocol/auth_channel.hpp"
#include "sim/bb84.hpp"

int main() {
  using namespace qkdpp;

  // --- pre-shared authentication keys (bootstrap secret) -----------------
  Xoshiro256 pool_rng(1);
  const BitVec a2b = pool_rng.random_bits(auth::kTagKeyBits * 4096);
  const BitVec b2a = pool_rng.random_bits(auth::kTagKeyBits * 4096);
  auth::KeyPool alice_send(a2b), alice_recv(b2a);
  auth::KeyPool bob_send(b2a), bob_recv(a2b);

  auto [raw_alice, raw_bob] = protocol::make_channel_pair();
  protocol::AuthenticatedChannel alice_channel(std::move(raw_alice),
                                               alice_send, alice_recv);
  protocol::AuthenticatedChannel bob_channel(std::move(raw_bob), bob_send,
                                             bob_recv);

  // --- simulate the quantum layer and run two distillation blocks --------
  sim::LinkConfig link;
  link.channel.length_km = 15.0;
  const sim::Bb84Simulator simulator(link);

  pipeline::KeyStore alice_kms, bob_kms;
  pipeline::SessionConfig config;

  std::printf("distilling keys over an authenticated channel (15 km)...\n");
  for (std::uint64_t block = 1; block <= 2; ++block) {
    Xoshiro256 link_rng(100 + block);
    const auto record = simulator.run(1 << 20, link_rng);

    protocol::AliceTransmitLog alice_log{record.alice_bits,
                                         record.alice_bases,
                                         record.alice_class};
    pipeline::BobDetections bob_view;
    bob_view.block_id = block;
    bob_view.n_pulses = record.n_pulses;
    bob_view.detected_idx = record.detected_idx;
    bob_view.bits = record.bob_bits;
    bob_view.bases = record.bob_bases;

    auto alice_future = std::async(std::launch::async, [&] {
      Xoshiro256 rng(500 + block);
      return pipeline::run_alice_session(alice_channel, alice_log, block,
                                         config, rng);
    });
    const auto bob = pipeline::run_bob_session(bob_channel, bob_view, config);
    const auto alice = alice_future.get();

    if (!alice.success || !bob.success) {
      std::printf("  block %llu aborted: %s\n",
                  static_cast<unsigned long long>(block),
                  alice.abort_reason.c_str());
      continue;
    }
    const auto alice_id = alice_kms.deposit(alice.final_key).key_id;
    const auto bob_id = bob_kms.deposit(bob.final_key).key_id;
    std::printf("  block %llu: %zu secret bits (QBER %.2f%%, EC leak %llu, "
                "kms ids %llu/%llu)\n",
                static_cast<unsigned long long>(block),
                alice.final_key.size(), alice.qber_estimate * 100,
                static_cast<unsigned long long>(alice.leak_ec_bits),
                static_cast<unsigned long long>(alice_id),
                static_cast<unsigned long long>(bob_id));
  }

  std::printf("\nKMS state: alice %zu keys / %llu bits, bob %zu keys / %llu "
              "bits\n",
              alice_kms.keys_available(),
              static_cast<unsigned long long>(alice_kms.bits_available()),
              bob_kms.keys_available(),
              static_cast<unsigned long long>(bob_kms.bits_available()));
  std::printf("auth key consumed: %llu bits (replenishable from distilled "
              "key)\n\n",
              static_cast<unsigned long long>(alice_send.total_consumed() +
                                              alice_recv.total_consumed()));

  // --- application pattern: encrypt one message with a designated key ----
  const auto alice_key = alice_kms.get_key();
  if (!alice_key.has_value()) {
    std::printf("no key available\n");
    return 1;
  }
  const auto bob_key = bob_kms.get_key_with_id(alice_key->key_id);
  if (!bob_key.has_value() || bob_key->bits != alice_key->bits) {
    std::printf("key designation failed\n");
    return 1;
  }

  const std::string message = "attack at dawn? no - keys at dawn.";
  std::string ciphertext = message;
  for (std::size_t i = 0; i < ciphertext.size() * 8 &&
                          i < alice_key->bits.size();
       ++i) {
    if (alice_key->bits.get(i)) ciphertext[i / 8] ^= char(1 << (i % 8));
  }
  std::string decrypted = ciphertext;
  for (std::size_t i = 0; i < decrypted.size() * 8 && i < bob_key->bits.size();
       ++i) {
    if (bob_key->bits.get(i)) decrypted[i / 8] ^= char(1 << (i % 8));
  }
  std::printf("one-time-pad demo with kms key %llu:\n  plaintext : %s\n"
              "  decrypted : %s\n",
              static_cast<unsigned long long>(alice_key->key_id),
              message.c_str(), decrypted.c_str());
  return decrypted == message ? 0 : 1;
}
