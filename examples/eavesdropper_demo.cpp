// Eavesdropper detection demo: intercept-resend attacks versus the
// post-processing defences.
//
//   $ ./examples/eavesdropper_demo
//
// Sweeps Eve's interception fraction and shows (a) the QBER climbing
// toward 25%, (b) the decoy-state single-photon error bound blowing past
// the 11% BB84 limit, and (c) the pipeline aborting instead of emitting
// key - the detection mechanism QKD's security story rests on.
#include <cstdio>

#include "pipeline/offline.hpp"
#include "protocol/param_estimation.hpp"
#include "sim/bb84.hpp"

int main() {
  using namespace qkdpp;

  std::printf("intercept-resend sweep on a 10 km link (misalignment 1.5%%)\n\n");
  std::printf("%10s | %8s | %12s | %10s | %s\n", "intercept", "QBER",
              "decoy e1_max", "final bits", "verdict");
  std::printf("-----------+----------+--------------+------------+---------"
              "--------\n");

  for (const double fraction : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    pipeline::OfflineConfig config;
    config.link.channel.length_km = 10.0;
    config.link.eve.intercept_fraction = fraction;
    config.link.source.p_signal = 0.7;  // beefier decoy statistics
    config.link.source.p_decoy = 0.15;
    config.link.source.p_vacuum = 0.15;
    config.pulses_per_block = 1 << 20;

    // Decoy-state view (what parameter estimation sees about single
    // photons) straight from the simulated detection statistics.
    Xoshiro256 stats_rng(static_cast<std::uint64_t>(fraction * 100) + 5);
    const auto record = sim::Bb84Simulator(config.link)
                            .run(config.pulses_per_block, stats_rng);
    const auto stats = sim::Bb84Simulator::stats(record);
    protocol::DecoyObservations obs;
    obs.mu = config.link.source.mu_signal;
    obs.nu = config.link.source.mu_decoy;
    obs.q_mu = stats.per_class[0].gain();
    obs.q_nu = stats.per_class[1].gain();
    obs.e_mu = stats.per_class[0].qber();
    obs.e_nu = stats.per_class[1].qber();
    obs.y0 = stats.per_class[2].gain();
    const auto bounds = protocol::decoy_bounds(obs);

    Xoshiro256 rng(static_cast<std::uint64_t>(fraction * 100) + 6);
    const auto block =
        pipeline::OfflinePipeline(config).process_block(1, rng);

    char decoy_cell[32];
    if (bounds.valid) {
      std::snprintf(decoy_cell, sizeof decoy_cell, "%11.1f%%",
                    bounds.e1_upper * 100);
    } else {
      std::snprintf(decoy_cell, sizeof decoy_cell, "%12s", "invalid");
    }
    std::printf("%9.0f%% | %7.2f%% | %s | %10zu | %s\n", fraction * 100,
                stats.per_class[0].qber() * 100, decoy_cell,
                block.final_key_bits,
                block.success ? "key distilled"
                              : block.abort_reason.c_str());
  }

  std::printf("\nEve pays in errors: every intercepted photon she re-sends "
              "in the wrong basis flips Bob's sifted bit half the time "
              "(25%% QBER at full interception). Past ~11%% the pipeline "
              "aborts and no key material is ever released.\n");
  return 0;
}
