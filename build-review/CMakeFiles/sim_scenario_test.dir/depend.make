# Empty dependencies file for sim_scenario_test.
# This may be replaced when dependencies are built.
