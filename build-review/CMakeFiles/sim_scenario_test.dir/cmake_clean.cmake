file(REMOVE_RECURSE
  "CMakeFiles/sim_scenario_test.dir/tests/sim_scenario_test.cpp.o"
  "CMakeFiles/sim_scenario_test.dir/tests/sim_scenario_test.cpp.o.d"
  "sim_scenario_test"
  "sim_scenario_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_scenario_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
