# Empty dependencies file for integration_misc_test.
# This may be replaced when dependencies are built.
