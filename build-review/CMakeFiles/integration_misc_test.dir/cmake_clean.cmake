file(REMOVE_RECURSE
  "CMakeFiles/integration_misc_test.dir/tests/integration_misc_test.cpp.o"
  "CMakeFiles/integration_misc_test.dir/tests/integration_misc_test.cpp.o.d"
  "integration_misc_test"
  "integration_misc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
