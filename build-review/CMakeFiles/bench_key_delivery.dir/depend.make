# Empty dependencies file for bench_key_delivery.
# This may be replaced when dependencies are built.
