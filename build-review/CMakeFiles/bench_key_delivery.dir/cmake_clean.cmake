file(REMOVE_RECURSE
  "CMakeFiles/bench_key_delivery.dir/bench/bench_key_delivery.cpp.o"
  "CMakeFiles/bench_key_delivery.dir/bench/bench_key_delivery.cpp.o.d"
  "bench_key_delivery"
  "bench_key_delivery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_key_delivery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
