# Empty compiler generated dependencies file for protocol_channel_test.
# This may be replaced when dependencies are built.
