file(REMOVE_RECURSE
  "CMakeFiles/common_clmul_test.dir/tests/common_clmul_test.cpp.o"
  "CMakeFiles/common_clmul_test.dir/tests/common_clmul_test.cpp.o.d"
  "common_clmul_test"
  "common_clmul_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_clmul_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
