# Empty compiler generated dependencies file for common_clmul_test.
# This may be replaced when dependencies are built.
