# Empty dependencies file for common_entropy_test.
# This may be replaced when dependencies are built.
