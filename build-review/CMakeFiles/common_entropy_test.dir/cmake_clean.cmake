file(REMOVE_RECURSE
  "CMakeFiles/common_entropy_test.dir/tests/common_entropy_test.cpp.o"
  "CMakeFiles/common_entropy_test.dir/tests/common_entropy_test.cpp.o.d"
  "common_entropy_test"
  "common_entropy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_entropy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
