# Empty dependencies file for service_dynamic_test.
# This may be replaced when dependencies are built.
