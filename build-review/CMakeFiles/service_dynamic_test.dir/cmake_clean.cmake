file(REMOVE_RECURSE
  "CMakeFiles/service_dynamic_test.dir/tests/service_dynamic_test.cpp.o"
  "CMakeFiles/service_dynamic_test.dir/tests/service_dynamic_test.cpp.o.d"
  "service_dynamic_test"
  "service_dynamic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_dynamic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
