# Empty compiler generated dependencies file for pipeline_kms_shard_test.
# This may be replaced when dependencies are built.
