file(REMOVE_RECURSE
  "CMakeFiles/bench_mapper_ablation.dir/bench/bench_mapper_ablation.cpp.o"
  "CMakeFiles/bench_mapper_ablation.dir/bench/bench_mapper_ablation.cpp.o.d"
  "bench_mapper_ablation"
  "bench_mapper_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mapper_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
