file(REMOVE_RECURSE
  "CMakeFiles/hetero_trace_test.dir/tests/hetero_trace_test.cpp.o"
  "CMakeFiles/hetero_trace_test.dir/tests/hetero_trace_test.cpp.o.d"
  "hetero_trace_test"
  "hetero_trace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
