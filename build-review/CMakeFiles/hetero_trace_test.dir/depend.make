# Empty dependencies file for hetero_trace_test.
# This may be replaced when dependencies are built.
