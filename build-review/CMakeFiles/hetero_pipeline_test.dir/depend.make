# Empty dependencies file for hetero_pipeline_test.
# This may be replaced when dependencies are built.
