file(REMOVE_RECURSE
  "CMakeFiles/hetero_pipeline_test.dir/tests/hetero_pipeline_test.cpp.o"
  "CMakeFiles/hetero_pipeline_test.dir/tests/hetero_pipeline_test.cpp.o.d"
  "hetero_pipeline_test"
  "hetero_pipeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
