file(REMOVE_RECURSE
  "CMakeFiles/hetero_device_test.dir/tests/hetero_device_test.cpp.o"
  "CMakeFiles/hetero_device_test.dir/tests/hetero_device_test.cpp.o.d"
  "hetero_device_test"
  "hetero_device_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
