# Empty dependencies file for hetero_device_test.
# This may be replaced when dependencies are built.
