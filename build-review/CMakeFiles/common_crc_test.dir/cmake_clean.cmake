file(REMOVE_RECURSE
  "CMakeFiles/common_crc_test.dir/tests/common_crc_test.cpp.o"
  "CMakeFiles/common_crc_test.dir/tests/common_crc_test.cpp.o.d"
  "common_crc_test"
  "common_crc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_crc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
