# Empty compiler generated dependencies file for common_crc_test.
# This may be replaced when dependencies are built.
