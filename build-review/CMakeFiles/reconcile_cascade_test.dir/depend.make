# Empty dependencies file for reconcile_cascade_test.
# This may be replaced when dependencies are built.
