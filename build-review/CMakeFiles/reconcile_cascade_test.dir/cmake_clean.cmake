file(REMOVE_RECURSE
  "CMakeFiles/reconcile_cascade_test.dir/tests/reconcile_cascade_test.cpp.o"
  "CMakeFiles/reconcile_cascade_test.dir/tests/reconcile_cascade_test.cpp.o.d"
  "reconcile_cascade_test"
  "reconcile_cascade_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reconcile_cascade_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
