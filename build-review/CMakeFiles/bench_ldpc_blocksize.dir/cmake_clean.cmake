file(REMOVE_RECURSE
  "CMakeFiles/bench_ldpc_blocksize.dir/bench/bench_ldpc_blocksize.cpp.o"
  "CMakeFiles/bench_ldpc_blocksize.dir/bench/bench_ldpc_blocksize.cpp.o.d"
  "bench_ldpc_blocksize"
  "bench_ldpc_blocksize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ldpc_blocksize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
