# Empty dependencies file for bench_ldpc_blocksize.
# This may be replaced when dependencies are built.
