file(REMOVE_RECURSE
  "CMakeFiles/dynamic_link.dir/examples/dynamic_link.cpp.o"
  "CMakeFiles/dynamic_link.dir/examples/dynamic_link.cpp.o.d"
  "dynamic_link"
  "dynamic_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
