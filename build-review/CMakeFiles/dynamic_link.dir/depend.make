# Empty dependencies file for dynamic_link.
# This may be replaced when dependencies are built.
