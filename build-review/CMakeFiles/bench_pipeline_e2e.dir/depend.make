# Empty dependencies file for bench_pipeline_e2e.
# This may be replaced when dependencies are built.
