file(REMOVE_RECURSE
  "CMakeFiles/bench_pipeline_e2e.dir/bench/bench_pipeline_e2e.cpp.o"
  "CMakeFiles/bench_pipeline_e2e.dir/bench/bench_pipeline_e2e.cpp.o.d"
  "bench_pipeline_e2e"
  "bench_pipeline_e2e.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pipeline_e2e.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
