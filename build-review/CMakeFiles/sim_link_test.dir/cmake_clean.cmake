file(REMOVE_RECURSE
  "CMakeFiles/sim_link_test.dir/tests/sim_link_test.cpp.o"
  "CMakeFiles/sim_link_test.dir/tests/sim_link_test.cpp.o.d"
  "sim_link_test"
  "sim_link_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_link_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
