# Empty compiler generated dependencies file for metro_link.
# This may be replaced when dependencies are built.
