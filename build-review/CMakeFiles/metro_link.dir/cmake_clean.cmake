file(REMOVE_RECURSE
  "CMakeFiles/metro_link.dir/examples/metro_link.cpp.o"
  "CMakeFiles/metro_link.dir/examples/metro_link.cpp.o.d"
  "metro_link"
  "metro_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metro_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
