# Empty compiler generated dependencies file for api_delivery_test.
# This may be replaced when dependencies are built.
