file(REMOVE_RECURSE
  "CMakeFiles/api_delivery_test.dir/tests/api_delivery_test.cpp.o"
  "CMakeFiles/api_delivery_test.dir/tests/api_delivery_test.cpp.o.d"
  "api_delivery_test"
  "api_delivery_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/api_delivery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
