file(REMOVE_RECURSE
  "CMakeFiles/common_bitvec_test.dir/tests/common_bitvec_test.cpp.o"
  "CMakeFiles/common_bitvec_test.dir/tests/common_bitvec_test.cpp.o.d"
  "common_bitvec_test"
  "common_bitvec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_bitvec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
