# Empty compiler generated dependencies file for common_bitvec_test.
# This may be replaced when dependencies are built.
