file(REMOVE_RECURSE
  "CMakeFiles/api_json_test.dir/tests/api_json_test.cpp.o"
  "CMakeFiles/api_json_test.dir/tests/api_json_test.cpp.o.d"
  "api_json_test"
  "api_json_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/api_json_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
