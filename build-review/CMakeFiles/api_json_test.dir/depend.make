# Empty dependencies file for api_json_test.
# This may be replaced when dependencies are built.
