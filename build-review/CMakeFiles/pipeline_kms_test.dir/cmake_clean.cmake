file(REMOVE_RECURSE
  "CMakeFiles/pipeline_kms_test.dir/tests/pipeline_kms_test.cpp.o"
  "CMakeFiles/pipeline_kms_test.dir/tests/pipeline_kms_test.cpp.o.d"
  "pipeline_kms_test"
  "pipeline_kms_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_kms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
