file(REMOVE_RECURSE
  "CMakeFiles/bench_toeplitz.dir/bench/bench_toeplitz.cpp.o"
  "CMakeFiles/bench_toeplitz.dir/bench/bench_toeplitz.cpp.o.d"
  "bench_toeplitz"
  "bench_toeplitz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_toeplitz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
