# Empty dependencies file for bench_toeplitz.
# This may be replaced when dependencies are built.
