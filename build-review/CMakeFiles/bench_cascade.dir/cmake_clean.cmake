file(REMOVE_RECURSE
  "CMakeFiles/bench_cascade.dir/bench/bench_cascade.cpp.o"
  "CMakeFiles/bench_cascade.dir/bench/bench_cascade.cpp.o.d"
  "bench_cascade"
  "bench_cascade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cascade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
