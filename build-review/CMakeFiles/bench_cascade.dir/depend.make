# Empty dependencies file for bench_cascade.
# This may be replaced when dependencies are built.
