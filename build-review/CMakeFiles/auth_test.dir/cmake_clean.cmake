file(REMOVE_RECURSE
  "CMakeFiles/auth_test.dir/tests/auth_test.cpp.o"
  "CMakeFiles/auth_test.dir/tests/auth_test.cpp.o.d"
  "auth_test"
  "auth_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
