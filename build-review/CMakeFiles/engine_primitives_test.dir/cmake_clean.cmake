file(REMOVE_RECURSE
  "CMakeFiles/engine_primitives_test.dir/tests/engine_primitives_test.cpp.o"
  "CMakeFiles/engine_primitives_test.dir/tests/engine_primitives_test.cpp.o.d"
  "engine_primitives_test"
  "engine_primitives_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_primitives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
