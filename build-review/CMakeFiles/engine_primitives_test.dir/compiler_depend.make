# Empty compiler generated dependencies file for engine_primitives_test.
# This may be replaced when dependencies are built.
