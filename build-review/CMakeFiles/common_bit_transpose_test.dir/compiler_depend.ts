# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for common_bit_transpose_test.
