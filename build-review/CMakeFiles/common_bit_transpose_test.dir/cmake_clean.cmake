file(REMOVE_RECURSE
  "CMakeFiles/common_bit_transpose_test.dir/tests/common_bit_transpose_test.cpp.o"
  "CMakeFiles/common_bit_transpose_test.dir/tests/common_bit_transpose_test.cpp.o.d"
  "common_bit_transpose_test"
  "common_bit_transpose_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_bit_transpose_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
