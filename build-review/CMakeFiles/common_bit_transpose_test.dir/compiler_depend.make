# Empty compiler generated dependencies file for common_bit_transpose_test.
# This may be replaced when dependencies are built.
