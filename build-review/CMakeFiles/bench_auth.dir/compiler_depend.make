# Empty compiler generated dependencies file for bench_auth.
# This may be replaced when dependencies are built.
