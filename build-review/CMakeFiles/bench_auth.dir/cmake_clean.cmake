file(REMOVE_RECURSE
  "CMakeFiles/bench_auth.dir/bench/bench_auth.cpp.o"
  "CMakeFiles/bench_auth.dir/bench/bench_auth.cpp.o.d"
  "bench_auth"
  "bench_auth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_auth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
