# Empty compiler generated dependencies file for engine_replan_test.
# This may be replaced when dependencies are built.
