file(REMOVE_RECURSE
  "CMakeFiles/engine_replan_test.dir/tests/engine_replan_test.cpp.o"
  "CMakeFiles/engine_replan_test.dir/tests/engine_replan_test.cpp.o.d"
  "engine_replan_test"
  "engine_replan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_replan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
