# Empty compiler generated dependencies file for bench_polar.
# This may be replaced when dependencies are built.
