file(REMOVE_RECURSE
  "CMakeFiles/bench_polar.dir/bench/bench_polar.cpp.o"
  "CMakeFiles/bench_polar.dir/bench/bench_polar.cpp.o.d"
  "bench_polar"
  "bench_polar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_polar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
