file(REMOVE_RECURSE
  "CMakeFiles/protocol_sifting_test.dir/tests/protocol_sifting_test.cpp.o"
  "CMakeFiles/protocol_sifting_test.dir/tests/protocol_sifting_test.cpp.o.d"
  "protocol_sifting_test"
  "protocol_sifting_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_sifting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
