# Empty dependencies file for key_delivery_demo.
# This may be replaced when dependencies are built.
