file(REMOVE_RECURSE
  "CMakeFiles/key_delivery_demo.dir/examples/key_delivery_demo.cpp.o"
  "CMakeFiles/key_delivery_demo.dir/examples/key_delivery_demo.cpp.o.d"
  "key_delivery_demo"
  "key_delivery_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_delivery_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
