# Empty compiler generated dependencies file for common_threadpool_test.
# This may be replaced when dependencies are built.
