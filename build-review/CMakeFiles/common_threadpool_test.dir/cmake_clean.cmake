file(REMOVE_RECURSE
  "CMakeFiles/common_threadpool_test.dir/tests/common_threadpool_test.cpp.o"
  "CMakeFiles/common_threadpool_test.dir/tests/common_threadpool_test.cpp.o.d"
  "common_threadpool_test"
  "common_threadpool_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_threadpool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
