# Empty dependencies file for multi_link.
# This may be replaced when dependencies are built.
