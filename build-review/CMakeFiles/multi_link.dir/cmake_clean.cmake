file(REMOVE_RECURSE
  "CMakeFiles/multi_link.dir/examples/multi_link.cpp.o"
  "CMakeFiles/multi_link.dir/examples/multi_link.cpp.o.d"
  "multi_link"
  "multi_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
