file(REMOVE_RECURSE
  "CMakeFiles/bench_stage_breakdown.dir/bench/bench_stage_breakdown.cpp.o"
  "CMakeFiles/bench_stage_breakdown.dir/bench/bench_stage_breakdown.cpp.o.d"
  "bench_stage_breakdown"
  "bench_stage_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stage_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
