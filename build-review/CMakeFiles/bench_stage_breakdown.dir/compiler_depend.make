# Empty compiler generated dependencies file for bench_stage_breakdown.
# This may be replaced when dependencies are built.
