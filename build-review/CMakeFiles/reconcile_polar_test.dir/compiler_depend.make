# Empty compiler generated dependencies file for reconcile_polar_test.
# This may be replaced when dependencies are built.
