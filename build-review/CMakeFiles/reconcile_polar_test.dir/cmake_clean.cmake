file(REMOVE_RECURSE
  "CMakeFiles/reconcile_polar_test.dir/tests/reconcile_polar_test.cpp.o"
  "CMakeFiles/reconcile_polar_test.dir/tests/reconcile_polar_test.cpp.o.d"
  "reconcile_polar_test"
  "reconcile_polar_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reconcile_polar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
