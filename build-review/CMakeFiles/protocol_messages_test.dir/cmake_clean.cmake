file(REMOVE_RECURSE
  "CMakeFiles/protocol_messages_test.dir/tests/protocol_messages_test.cpp.o"
  "CMakeFiles/protocol_messages_test.dir/tests/protocol_messages_test.cpp.o.d"
  "protocol_messages_test"
  "protocol_messages_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_messages_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
