# Empty compiler generated dependencies file for common_gf2_test.
# This may be replaced when dependencies are built.
