file(REMOVE_RECURSE
  "CMakeFiles/common_gf2_test.dir/tests/common_gf2_test.cpp.o"
  "CMakeFiles/common_gf2_test.dir/tests/common_gf2_test.cpp.o.d"
  "common_gf2_test"
  "common_gf2_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_gf2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
