# Empty dependencies file for network_failover_test.
# This may be replaced when dependencies are built.
