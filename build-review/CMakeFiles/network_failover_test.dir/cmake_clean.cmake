file(REMOVE_RECURSE
  "CMakeFiles/network_failover_test.dir/tests/network_failover_test.cpp.o"
  "CMakeFiles/network_failover_test.dir/tests/network_failover_test.cpp.o.d"
  "network_failover_test"
  "network_failover_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_failover_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
