
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/dispatcher.cpp" "CMakeFiles/qkdpp.dir/src/api/dispatcher.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/api/dispatcher.cpp.o.d"
  "/root/repo/src/api/dtos.cpp" "CMakeFiles/qkdpp.dir/src/api/dtos.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/api/dtos.cpp.o.d"
  "/root/repo/src/api/json.cpp" "CMakeFiles/qkdpp.dir/src/api/json.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/api/json.cpp.o.d"
  "/root/repo/src/api/key_delivery.cpp" "CMakeFiles/qkdpp.dir/src/api/key_delivery.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/api/key_delivery.cpp.o.d"
  "/root/repo/src/auth/key_pool.cpp" "CMakeFiles/qkdpp.dir/src/auth/key_pool.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/auth/key_pool.cpp.o.d"
  "/root/repo/src/auth/wegman_carter.cpp" "CMakeFiles/qkdpp.dir/src/auth/wegman_carter.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/auth/wegman_carter.cpp.o.d"
  "/root/repo/src/common/arena.cpp" "CMakeFiles/qkdpp.dir/src/common/arena.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/common/arena.cpp.o.d"
  "/root/repo/src/common/bit_transpose.cpp" "CMakeFiles/qkdpp.dir/src/common/bit_transpose.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/common/bit_transpose.cpp.o.d"
  "/root/repo/src/common/bitvec.cpp" "CMakeFiles/qkdpp.dir/src/common/bitvec.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/common/bitvec.cpp.o.d"
  "/root/repo/src/common/buffer.cpp" "CMakeFiles/qkdpp.dir/src/common/buffer.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/common/buffer.cpp.o.d"
  "/root/repo/src/common/clmul.cpp" "CMakeFiles/qkdpp.dir/src/common/clmul.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/common/clmul.cpp.o.d"
  "/root/repo/src/common/crc.cpp" "CMakeFiles/qkdpp.dir/src/common/crc.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/common/crc.cpp.o.d"
  "/root/repo/src/common/entropy.cpp" "CMakeFiles/qkdpp.dir/src/common/entropy.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/common/entropy.cpp.o.d"
  "/root/repo/src/common/error.cpp" "CMakeFiles/qkdpp.dir/src/common/error.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/common/error.cpp.o.d"
  "/root/repo/src/common/gf2.cpp" "CMakeFiles/qkdpp.dir/src/common/gf2.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/common/gf2.cpp.o.d"
  "/root/repo/src/common/log.cpp" "CMakeFiles/qkdpp.dir/src/common/log.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/common/log.cpp.o.d"
  "/root/repo/src/common/ntt.cpp" "CMakeFiles/qkdpp.dir/src/common/ntt.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/common/ntt.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "CMakeFiles/qkdpp.dir/src/common/rng.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/common/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "CMakeFiles/qkdpp.dir/src/common/stats.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/common/stats.cpp.o.d"
  "/root/repo/src/common/threadpool.cpp" "CMakeFiles/qkdpp.dir/src/common/threadpool.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/common/threadpool.cpp.o.d"
  "/root/repo/src/engine/engine.cpp" "CMakeFiles/qkdpp.dir/src/engine/engine.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/engine/engine.cpp.o.d"
  "/root/repo/src/engine/primitives.cpp" "CMakeFiles/qkdpp.dir/src/engine/primitives.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/engine/primitives.cpp.o.d"
  "/root/repo/src/engine/stages.cpp" "CMakeFiles/qkdpp.dir/src/engine/stages.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/engine/stages.cpp.o.d"
  "/root/repo/src/hetero/device.cpp" "CMakeFiles/qkdpp.dir/src/hetero/device.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/hetero/device.cpp.o.d"
  "/root/repo/src/hetero/device_set.cpp" "CMakeFiles/qkdpp.dir/src/hetero/device_set.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/hetero/device_set.cpp.o.d"
  "/root/repo/src/hetero/kernels.cpp" "CMakeFiles/qkdpp.dir/src/hetero/kernels.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/hetero/kernels.cpp.o.d"
  "/root/repo/src/hetero/mapper.cpp" "CMakeFiles/qkdpp.dir/src/hetero/mapper.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/hetero/mapper.cpp.o.d"
  "/root/repo/src/hetero/trace.cpp" "CMakeFiles/qkdpp.dir/src/hetero/trace.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/hetero/trace.cpp.o.d"
  "/root/repo/src/network/delivery.cpp" "CMakeFiles/qkdpp.dir/src/network/delivery.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/network/delivery.cpp.o.d"
  "/root/repo/src/network/relay.cpp" "CMakeFiles/qkdpp.dir/src/network/relay.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/network/relay.cpp.o.d"
  "/root/repo/src/network/router.cpp" "CMakeFiles/qkdpp.dir/src/network/router.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/network/router.cpp.o.d"
  "/root/repo/src/network/topology.cpp" "CMakeFiles/qkdpp.dir/src/network/topology.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/network/topology.cpp.o.d"
  "/root/repo/src/pipeline/kms.cpp" "CMakeFiles/qkdpp.dir/src/pipeline/kms.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/pipeline/kms.cpp.o.d"
  "/root/repo/src/pipeline/offline.cpp" "CMakeFiles/qkdpp.dir/src/pipeline/offline.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/pipeline/offline.cpp.o.d"
  "/root/repo/src/pipeline/session.cpp" "CMakeFiles/qkdpp.dir/src/pipeline/session.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/pipeline/session.cpp.o.d"
  "/root/repo/src/privacy/pa_planner.cpp" "CMakeFiles/qkdpp.dir/src/privacy/pa_planner.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/privacy/pa_planner.cpp.o.d"
  "/root/repo/src/privacy/toeplitz.cpp" "CMakeFiles/qkdpp.dir/src/privacy/toeplitz.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/privacy/toeplitz.cpp.o.d"
  "/root/repo/src/privacy/verification.cpp" "CMakeFiles/qkdpp.dir/src/privacy/verification.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/privacy/verification.cpp.o.d"
  "/root/repo/src/protocol/auth_channel.cpp" "CMakeFiles/qkdpp.dir/src/protocol/auth_channel.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/protocol/auth_channel.cpp.o.d"
  "/root/repo/src/protocol/channel.cpp" "CMakeFiles/qkdpp.dir/src/protocol/channel.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/protocol/channel.cpp.o.d"
  "/root/repo/src/protocol/faulty_channel.cpp" "CMakeFiles/qkdpp.dir/src/protocol/faulty_channel.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/protocol/faulty_channel.cpp.o.d"
  "/root/repo/src/protocol/messages.cpp" "CMakeFiles/qkdpp.dir/src/protocol/messages.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/protocol/messages.cpp.o.d"
  "/root/repo/src/protocol/param_estimation.cpp" "CMakeFiles/qkdpp.dir/src/protocol/param_estimation.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/protocol/param_estimation.cpp.o.d"
  "/root/repo/src/protocol/reliable_channel.cpp" "CMakeFiles/qkdpp.dir/src/protocol/reliable_channel.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/protocol/reliable_channel.cpp.o.d"
  "/root/repo/src/protocol/sifting.cpp" "CMakeFiles/qkdpp.dir/src/protocol/sifting.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/protocol/sifting.cpp.o.d"
  "/root/repo/src/reconcile/batch_decoder.cpp" "CMakeFiles/qkdpp.dir/src/reconcile/batch_decoder.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/reconcile/batch_decoder.cpp.o.d"
  "/root/repo/src/reconcile/cascade.cpp" "CMakeFiles/qkdpp.dir/src/reconcile/cascade.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/reconcile/cascade.cpp.o.d"
  "/root/repo/src/reconcile/ldpc_code.cpp" "CMakeFiles/qkdpp.dir/src/reconcile/ldpc_code.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/reconcile/ldpc_code.cpp.o.d"
  "/root/repo/src/reconcile/ldpc_decoder.cpp" "CMakeFiles/qkdpp.dir/src/reconcile/ldpc_decoder.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/reconcile/ldpc_decoder.cpp.o.d"
  "/root/repo/src/reconcile/parity_oracle.cpp" "CMakeFiles/qkdpp.dir/src/reconcile/parity_oracle.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/reconcile/parity_oracle.cpp.o.d"
  "/root/repo/src/reconcile/polar.cpp" "CMakeFiles/qkdpp.dir/src/reconcile/polar.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/reconcile/polar.cpp.o.d"
  "/root/repo/src/reconcile/rate_adapt.cpp" "CMakeFiles/qkdpp.dir/src/reconcile/rate_adapt.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/reconcile/rate_adapt.cpp.o.d"
  "/root/repo/src/reconcile/reconciler.cpp" "CMakeFiles/qkdpp.dir/src/reconcile/reconciler.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/reconcile/reconciler.cpp.o.d"
  "/root/repo/src/service/link_orchestrator.cpp" "CMakeFiles/qkdpp.dir/src/service/link_orchestrator.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/service/link_orchestrator.cpp.o.d"
  "/root/repo/src/sim/bb84.cpp" "CMakeFiles/qkdpp.dir/src/sim/bb84.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/sim/bb84.cpp.o.d"
  "/root/repo/src/sim/link_config.cpp" "CMakeFiles/qkdpp.dir/src/sim/link_config.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/sim/link_config.cpp.o.d"
  "/root/repo/src/sim/scenario.cpp" "CMakeFiles/qkdpp.dir/src/sim/scenario.cpp.o" "gcc" "CMakeFiles/qkdpp.dir/src/sim/scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
