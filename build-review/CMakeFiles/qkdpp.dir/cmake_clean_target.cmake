file(REMOVE_RECURSE
  "libqkdpp.a"
)
