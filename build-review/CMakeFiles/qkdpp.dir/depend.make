# Empty dependencies file for qkdpp.
# This may be replaced when dependencies are built.
