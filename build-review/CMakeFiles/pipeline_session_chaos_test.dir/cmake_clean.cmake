file(REMOVE_RECURSE
  "CMakeFiles/pipeline_session_chaos_test.dir/tests/pipeline_session_chaos_test.cpp.o"
  "CMakeFiles/pipeline_session_chaos_test.dir/tests/pipeline_session_chaos_test.cpp.o.d"
  "pipeline_session_chaos_test"
  "pipeline_session_chaos_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_session_chaos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
