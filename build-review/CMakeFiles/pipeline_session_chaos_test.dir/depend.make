# Empty dependencies file for pipeline_session_chaos_test.
# This may be replaced when dependencies are built.
