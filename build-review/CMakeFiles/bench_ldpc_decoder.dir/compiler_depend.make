# Empty compiler generated dependencies file for bench_ldpc_decoder.
# This may be replaced when dependencies are built.
