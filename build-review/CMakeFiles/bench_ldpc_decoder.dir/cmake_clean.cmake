file(REMOVE_RECURSE
  "CMakeFiles/bench_ldpc_decoder.dir/bench/bench_ldpc_decoder.cpp.o"
  "CMakeFiles/bench_ldpc_decoder.dir/bench/bench_ldpc_decoder.cpp.o.d"
  "bench_ldpc_decoder"
  "bench_ldpc_decoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ldpc_decoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
