# Empty dependencies file for kms_demo.
# This may be replaced when dependencies are built.
