file(REMOVE_RECURSE
  "CMakeFiles/kms_demo.dir/examples/kms_demo.cpp.o"
  "CMakeFiles/kms_demo.dir/examples/kms_demo.cpp.o.d"
  "kms_demo"
  "kms_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kms_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
