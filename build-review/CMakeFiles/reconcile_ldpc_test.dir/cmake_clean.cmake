file(REMOVE_RECURSE
  "CMakeFiles/reconcile_ldpc_test.dir/tests/reconcile_ldpc_test.cpp.o"
  "CMakeFiles/reconcile_ldpc_test.dir/tests/reconcile_ldpc_test.cpp.o.d"
  "reconcile_ldpc_test"
  "reconcile_ldpc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reconcile_ldpc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
