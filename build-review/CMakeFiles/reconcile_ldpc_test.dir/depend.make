# Empty dependencies file for reconcile_ldpc_test.
# This may be replaced when dependencies are built.
