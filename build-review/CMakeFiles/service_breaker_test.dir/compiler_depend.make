# Empty compiler generated dependencies file for service_breaker_test.
# This may be replaced when dependencies are built.
