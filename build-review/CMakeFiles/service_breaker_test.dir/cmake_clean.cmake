file(REMOVE_RECURSE
  "CMakeFiles/service_breaker_test.dir/tests/service_breaker_test.cpp.o"
  "CMakeFiles/service_breaker_test.dir/tests/service_breaker_test.cpp.o.d"
  "service_breaker_test"
  "service_breaker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_breaker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
