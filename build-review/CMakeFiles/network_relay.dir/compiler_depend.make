# Empty compiler generated dependencies file for network_relay.
# This may be replaced when dependencies are built.
