file(REMOVE_RECURSE
  "CMakeFiles/network_relay.dir/examples/network_relay.cpp.o"
  "CMakeFiles/network_relay.dir/examples/network_relay.cpp.o.d"
  "network_relay"
  "network_relay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_relay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
