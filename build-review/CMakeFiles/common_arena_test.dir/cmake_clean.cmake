file(REMOVE_RECURSE
  "CMakeFiles/common_arena_test.dir/tests/common_arena_test.cpp.o"
  "CMakeFiles/common_arena_test.dir/tests/common_arena_test.cpp.o.d"
  "common_arena_test"
  "common_arena_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_arena_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
