# Empty compiler generated dependencies file for common_arena_test.
# This may be replaced when dependencies are built.
