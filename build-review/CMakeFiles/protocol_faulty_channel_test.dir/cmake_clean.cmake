file(REMOVE_RECURSE
  "CMakeFiles/protocol_faulty_channel_test.dir/tests/protocol_faulty_channel_test.cpp.o"
  "CMakeFiles/protocol_faulty_channel_test.dir/tests/protocol_faulty_channel_test.cpp.o.d"
  "protocol_faulty_channel_test"
  "protocol_faulty_channel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_faulty_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
