# Empty dependencies file for protocol_faulty_channel_test.
# This may be replaced when dependencies are built.
