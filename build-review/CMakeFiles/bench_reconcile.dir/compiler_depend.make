# Empty compiler generated dependencies file for bench_reconcile.
# This may be replaced when dependencies are built.
