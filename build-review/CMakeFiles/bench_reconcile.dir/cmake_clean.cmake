file(REMOVE_RECURSE
  "CMakeFiles/bench_reconcile.dir/bench/bench_reconcile.cpp.o"
  "CMakeFiles/bench_reconcile.dir/bench/bench_reconcile.cpp.o.d"
  "bench_reconcile"
  "bench_reconcile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reconcile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
