# Empty compiler generated dependencies file for kms_close_race_test.
# This may be replaced when dependencies are built.
