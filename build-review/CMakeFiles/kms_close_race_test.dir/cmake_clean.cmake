file(REMOVE_RECURSE
  "CMakeFiles/kms_close_race_test.dir/tests/kms_close_race_test.cpp.o"
  "CMakeFiles/kms_close_race_test.dir/tests/kms_close_race_test.cpp.o.d"
  "kms_close_race_test"
  "kms_close_race_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kms_close_race_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
