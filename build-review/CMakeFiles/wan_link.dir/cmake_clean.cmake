file(REMOVE_RECURSE
  "CMakeFiles/wan_link.dir/examples/wan_link.cpp.o"
  "CMakeFiles/wan_link.dir/examples/wan_link.cpp.o.d"
  "wan_link"
  "wan_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wan_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
