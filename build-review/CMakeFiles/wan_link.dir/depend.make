# Empty dependencies file for wan_link.
# This may be replaced when dependencies are built.
