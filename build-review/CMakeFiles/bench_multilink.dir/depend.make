# Empty dependencies file for bench_multilink.
# This may be replaced when dependencies are built.
