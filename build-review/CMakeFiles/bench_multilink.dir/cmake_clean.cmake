file(REMOVE_RECURSE
  "CMakeFiles/bench_multilink.dir/bench/bench_multilink.cpp.o"
  "CMakeFiles/bench_multilink.dir/bench/bench_multilink.cpp.o.d"
  "bench_multilink"
  "bench_multilink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multilink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
