file(REMOVE_RECURSE
  "CMakeFiles/reconcile_batch_test.dir/tests/reconcile_batch_test.cpp.o"
  "CMakeFiles/reconcile_batch_test.dir/tests/reconcile_batch_test.cpp.o.d"
  "reconcile_batch_test"
  "reconcile_batch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reconcile_batch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
