# Empty compiler generated dependencies file for reconcile_batch_test.
# This may be replaced when dependencies are built.
