# Empty dependencies file for common_spsc_ring_test.
# This may be replaced when dependencies are built.
