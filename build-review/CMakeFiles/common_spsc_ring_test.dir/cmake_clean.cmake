file(REMOVE_RECURSE
  "CMakeFiles/common_spsc_ring_test.dir/tests/common_spsc_ring_test.cpp.o"
  "CMakeFiles/common_spsc_ring_test.dir/tests/common_spsc_ring_test.cpp.o.d"
  "common_spsc_ring_test"
  "common_spsc_ring_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_spsc_ring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
