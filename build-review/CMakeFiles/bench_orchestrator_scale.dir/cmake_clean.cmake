file(REMOVE_RECURSE
  "CMakeFiles/bench_orchestrator_scale.dir/bench/bench_orchestrator_scale.cpp.o"
  "CMakeFiles/bench_orchestrator_scale.dir/bench/bench_orchestrator_scale.cpp.o.d"
  "bench_orchestrator_scale"
  "bench_orchestrator_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_orchestrator_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
