# Empty dependencies file for bench_orchestrator_scale.
# This may be replaced when dependencies are built.
