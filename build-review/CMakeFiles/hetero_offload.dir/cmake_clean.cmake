file(REMOVE_RECURSE
  "CMakeFiles/hetero_offload.dir/examples/hetero_offload.cpp.o"
  "CMakeFiles/hetero_offload.dir/examples/hetero_offload.cpp.o.d"
  "hetero_offload"
  "hetero_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
