# Empty dependencies file for hetero_offload.
# This may be replaced when dependencies are built.
