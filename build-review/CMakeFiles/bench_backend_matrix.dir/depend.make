# Empty dependencies file for bench_backend_matrix.
# This may be replaced when dependencies are built.
