file(REMOVE_RECURSE
  "CMakeFiles/bench_backend_matrix.dir/bench/bench_backend_matrix.cpp.o"
  "CMakeFiles/bench_backend_matrix.dir/bench/bench_backend_matrix.cpp.o.d"
  "bench_backend_matrix"
  "bench_backend_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_backend_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
