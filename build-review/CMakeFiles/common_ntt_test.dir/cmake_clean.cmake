file(REMOVE_RECURSE
  "CMakeFiles/common_ntt_test.dir/tests/common_ntt_test.cpp.o"
  "CMakeFiles/common_ntt_test.dir/tests/common_ntt_test.cpp.o.d"
  "common_ntt_test"
  "common_ntt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_ntt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
