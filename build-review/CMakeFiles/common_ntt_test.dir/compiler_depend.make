# Empty compiler generated dependencies file for common_ntt_test.
# This may be replaced when dependencies are built.
