# Empty dependencies file for network_relay_test.
# This may be replaced when dependencies are built.
