file(REMOVE_RECURSE
  "CMakeFiles/network_relay_test.dir/tests/network_relay_test.cpp.o"
  "CMakeFiles/network_relay_test.dir/tests/network_relay_test.cpp.o.d"
  "network_relay_test"
  "network_relay_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_relay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
