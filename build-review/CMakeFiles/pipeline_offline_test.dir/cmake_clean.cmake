file(REMOVE_RECURSE
  "CMakeFiles/pipeline_offline_test.dir/tests/pipeline_offline_test.cpp.o"
  "CMakeFiles/pipeline_offline_test.dir/tests/pipeline_offline_test.cpp.o.d"
  "pipeline_offline_test"
  "pipeline_offline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_offline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
