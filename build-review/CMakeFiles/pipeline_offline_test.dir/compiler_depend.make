# Empty compiler generated dependencies file for pipeline_offline_test.
# This may be replaced when dependencies are built.
