file(REMOVE_RECURSE
  "CMakeFiles/service_orchestrator_test.dir/tests/service_orchestrator_test.cpp.o"
  "CMakeFiles/service_orchestrator_test.dir/tests/service_orchestrator_test.cpp.o.d"
  "service_orchestrator_test"
  "service_orchestrator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_orchestrator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
