# Empty dependencies file for service_orchestrator_test.
# This may be replaced when dependencies are built.
