// Experiment F4 - Cascade vs LDPC head-to-head across QBER: reconciliation
// efficiency f_EC, protocol round-trips, and CPU throughput. Expected
// shape: Cascade's efficiency stays near 1.05-1.25 everywhere and beats
// regular-code LDPC, but its round count is two orders of magnitude
// higher - the latency-vs-leakage trade-off that pushes deployments with
// long round-trip times toward one-way LDPC.
#include <cstdio>

#include "bench_util.hpp"
#include "common/entropy.hpp"
#include "common/stats.hpp"
#include "reconcile/reconciler.hpp"

int main() {
  using namespace qkdpp;
  using namespace qkdpp::reconcile;

  const std::size_t n = 65536;
  std::printf("F4: Cascade vs LDPC at n=%zu\n\n", n);
  std::printf("%6s | %9s %7s %9s | %9s %7s %9s %6s\n", "QBER", "casc f",
              "rounds", "Mbit/s", "ldpc f", "rounds", "Mbit/s", "FER");

  for (const double q : {0.005, 0.01, 0.02, 0.03, 0.05, 0.08, 0.11}) {
    Xoshiro256 rng(static_cast<std::uint64_t>(q * 1e6) + 13);
    const BitVec alice = rng.random_bits(n);
    const BitVec bob = benchutil::corrupt(alice, q, rng);

    // Cascade.
    CascadeConfig cascade_config;
    cascade_config.qber_hint = q;
    cascade_config.passes = 6;
    cascade_config.seed = 99;
    Stopwatch stopwatch;
    const auto cascade = cascade_reconcile_local(alice, bob, q, cascade_config);
    const double cascade_s = stopwatch.seconds();
    const bool cascade_ok = cascade.corrected == alice;

    // LDPC over the same key, frame by frame.
    LdpcReconcilerConfig ldpc_config;
    const auto plan = plan_frame_fitting(n, q, ldpc_config.f_target);
    const std::size_t frames = n / plan.payload_bits;
    Xoshiro256 private_rng(7);
    std::uint64_t ldpc_leak = 0;
    std::uint64_t ldpc_rounds = 0;
    int ldpc_failures = 0;
    stopwatch.reset();
    for (std::size_t f = 0; f < frames; ++f) {
      const BitVec alice_payload =
          alice.subvec(f * plan.payload_bits, plan.payload_bits);
      const BitVec bob_payload =
          bob.subvec(f * plan.payload_bits, plan.payload_bits);
      const auto outcome = ldpc_reconcile_local(
          alice_payload, bob_payload, q, plan, f * 31 + 5, ldpc_config,
          private_rng);
      ldpc_leak += outcome.leaked_bits;
      ldpc_rounds += outcome.rounds;
      ldpc_failures += !outcome.success;
    }
    const double ldpc_s = stopwatch.seconds();
    const double ldpc_f =
        static_cast<double>(ldpc_leak) /
        (static_cast<double>(frames * plan.payload_bits) * binary_entropy(q));

    std::printf("%5.1f%% | %9.3f %7llu %9.2f | %9.3f %7llu %9.2f %6.2f%s\n",
                q * 100, cascade.efficiency,
                static_cast<unsigned long long>(cascade.rounds),
                static_cast<double>(n) / cascade_s / 1e6, ldpc_f,
                static_cast<unsigned long long>(ldpc_rounds),
                static_cast<double>(frames * plan.payload_bits) / ldpc_s / 1e6,
                static_cast<double>(ldpc_failures) / static_cast<double>(frames),
                cascade_ok ? "" : "  [cascade residual!]");
  }
  std::printf("\nshape check: cascade f < ldpc f everywhere; cascade rounds "
              ">> ldpc rounds (which stay ~1/frame).\n");
  return 0;
}
