// Experiment F5 - privacy-amplification throughput vs input block length:
// direct word-sliced Toeplitz vs clmul carry-less convolution vs NTT
// convolution vs gpu-sim-offloaded NTT. Expected shape: clmul (Karatsuba
// over PCLMUL/windowed schoolbook) leads from ~2^6 bits up - >= 100x over
// the NTT at 10^5-bit blocks with hardware carry-less multiply; direct only
// wins on tiny or very sparse inputs; gpu-sim adds a flat launch + transfer
// floor that only pays off at large n. The 100000-bit point is the
// acceptance anchor recorded by scripts/run_benches.sh. google-benchmark
// binary.
#include <benchmark/benchmark.h>

#include "common/clmul.hpp"
#include "common/rng.hpp"
#include "hetero/kernels.hpp"
#include "privacy/toeplitz.hpp"

namespace {

using namespace qkdpp;

struct PaCase {
  BitVec input;
  BitVec seed;
  std::size_t out_len;
};

PaCase make_case(std::size_t n) {
  Xoshiro256 rng(n * 17 + 3);
  PaCase c;
  c.out_len = n / 2;  // typical compression at metro QBER
  c.input = rng.random_bits(n);
  c.seed = rng.random_bits(n + c.out_len - 1);
  return c;
}

void BM_ToeplitzDirect(benchmark::State& state) {
  const auto c = make_case(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        privacy::toeplitz_hash_direct(c.input, c.seed, c.out_len));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.input.size() / 8));
}

void BM_ToeplitzClmul(benchmark::State& state) {
  const auto c = make_case(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        privacy::toeplitz_hash_clmul(c.input, c.seed, c.out_len));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.input.size() / 8));
  state.counters["hw_clmul"] =
      benchmark::Counter(clmul_has_hardware() ? 1.0 : 0.0);
}

void BM_ToeplitzNtt(benchmark::State& state) {
  const auto c = make_case(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        privacy::toeplitz_hash_ntt(c.input, c.seed, c.out_len));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.input.size() / 8));
}

void BM_ToeplitzGpuSimModeledSeconds(benchmark::State& state) {
  // Reports the *modeled* device seconds per hash as a counter (wall time
  // of this benchmark is the host-side correctness execution).
  const auto c = make_case(static_cast<std::size_t>(state.range(0)));
  ThreadPool pool(2);
  hetero::Device gpu(hetero::gpu_sim_props(), &pool);
  double modeled = 0;
  std::int64_t hashes = 0;
  for (auto _ : state) {
    BitVec out;
    modeled += hetero::timed_toeplitz(gpu, c.input, c.seed, c.out_len, out);
    benchmark::DoNotOptimize(out);
    ++hashes;
  }
  state.counters["modeled_s_per_hash"] =
      benchmark::Counter(modeled / static_cast<double>(hashes));
  state.counters["modeled_Mbps"] = benchmark::Counter(
      static_cast<double>(c.input.size()) * static_cast<double>(hashes) /
      modeled / 1e6);
}

}  // namespace

// Max input is 2^21: with out_len = n/2 the convolution length 2.5n must
// stay under the NTT transform limit of 2^23. The explicit 100000-bit arg
// is the paper-sized PA block the acceptance criteria compare at.
BENCHMARK(BM_ToeplitzDirect)->RangeMultiplier(4)->Range(1 << 12, 1 << 20)
    ->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ToeplitzClmul)->RangeMultiplier(4)->Range(1 << 8, 1 << 21)
    ->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ToeplitzNtt)->RangeMultiplier(4)->Range(1 << 12, 1 << 21)
    ->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ToeplitzGpuSimModeledSeconds)
    ->RangeMultiplier(16)
    ->Range(1 << 14, 1 << 20)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
