// Experiment T2 - end-to-end secret key rate vs fiber distance, and the
// post-processing throughput of all-CPU vs heterogeneity-mapped execution.
//
// Column 1-4: physics (per-pulse SKR falls exponentially with distance;
// cutoff where dark counts dominate). Column 5-6: systems (blocks/s the
// post-processing chain sustains on CPU wall-clock vs the engine's
// mapper-placed pipeline) - the paper-shaped claim is that CPU-only
// post-processing caps the key rate at metro distances while the
// accelerated mapping keeps up with the quantum layer.
//
// The final stdout line is a machine-readable JSON summary (items/s, stage
// breakdown, chosen mapping per distance) for the cross-PR perf trajectory.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "hetero/mapper.hpp"
#include "pipeline/offline.hpp"

namespace {

struct Row {
  double km = 0.0;
  bool ok = false;
  std::string abort_reason;
  double qber = 0.0;
  std::size_t secret_bits = 0;
  double skr_per_pulse = 0.0;
  double cpu_blocks_per_s = 0.0;        ///< measured all-CPU wall-clock
  double cpu_model_blocks_per_s = 0.0;  ///< modeled all-cpu-scalar placement
  double hetero_blocks_per_s = 0.0;     ///< modeled optimized placement
  qkdpp::engine::StageTimings timings;
  std::vector<std::string> stage_names;
  std::vector<std::string> mapping;  ///< device per stage
  // Batch decoder observability (identical across reps - the decode is
  // deterministic per seed; only wall-clock varies).
  std::uint64_t reconcile_frames = 0;
  std::uint64_t decoder_iterations = 0;
  std::uint64_t reconcile_early_exit_frames = 0;
  std::uint64_t reconcile_leaked_bits = 0;
};

void print_json(const std::vector<Row>& rows) {
  std::printf("{\"bench\":\"pipeline_e2e\",\"unit\":\"blocks_per_s\","
              "\"rows\":[");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::printf("%s{\"km\":%.0f,\"ok\":%s", i ? "," : "", row.km,
                row.ok ? "true" : "false");
    if (!row.ok) {
      std::printf(",\"abort\":\"%s\"}", row.abort_reason.c_str());
      continue;
    }
    std::printf(",\"qber\":%.5f,\"secret_bits\":%zu,\"skr_per_pulse\":%.4e",
                row.qber, row.secret_bits, row.skr_per_pulse);
    std::printf(",\"cpu_blocks_per_s\":%.4f,\"cpu_model_blocks_per_s\":%.4f"
                ",\"hetero_blocks_per_s\":%.4f",
                row.cpu_blocks_per_s, row.cpu_model_blocks_per_s,
                row.hetero_blocks_per_s);
    std::printf(",\"stage_seconds\":{\"sift\":%.6f,\"estimate\":%.6f,"
                "\"reconcile\":%.6f,\"verify\":%.6f,\"amplify\":%.6f}",
                row.timings.sift, row.timings.estimate, row.timings.reconcile,
                row.timings.verify, row.timings.amplify);
    // Per-stage throughput (blocks/s if this stage ran alone) - the number
    // the cross-PR perf trajectory tracks per kernel.
    const auto items_per_s = [](double seconds) {
      return seconds > 0.0 ? 1.0 / seconds : 0.0;
    };
    std::printf(",\"stage_items_per_s\":{\"sift\":%.2f,\"estimate\":%.2f,"
                "\"reconcile\":%.2f,\"verify\":%.2f,\"amplify\":%.2f}",
                items_per_s(row.timings.sift), items_per_s(row.timings.estimate),
                items_per_s(row.timings.reconcile),
                items_per_s(row.timings.verify),
                items_per_s(row.timings.amplify));
    const double frames = static_cast<double>(row.reconcile_frames);
    std::printf(",\"reconcile\":{\"frames\":%llu,\"iterations_mean\":%.2f,"
                "\"early_exit_rate\":%.3f,\"leaked_bits\":%llu}",
                static_cast<unsigned long long>(row.reconcile_frames),
                frames > 0 ? static_cast<double>(row.decoder_iterations) / frames
                           : 0.0,
                frames > 0 ? static_cast<double>(row.reconcile_early_exit_frames) /
                                 frames
                           : 0.0,
                static_cast<unsigned long long>(row.reconcile_leaked_bits));
    std::printf(",\"mapping\":{");
    for (std::size_t s = 0; s < row.stage_names.size(); ++s) {
      std::printf("%s\"%s\":\"%s\"", s ? "," : "", row.stage_names[s].c_str(),
                  row.mapping[s].c_str());
    }
    std::printf("}}");
  }
  std::printf("]}\n");
}

}  // namespace

int main() {
  using namespace qkdpp;

  std::printf("T2: secret key rate vs distance (decoy BB84, blocks scaled "
              "to ~40k sifted bits, LDPC)\n\n");
  std::printf("%6s | %8s %10s %12s | %12s %12s | %s\n", "km", "QBER",
              "secret b", "SKR/pulse", "cpu blk/s", "hetero blk/s",
              "verdict");

  std::vector<Row> rows;
  for (const double km : {10.0, 25.0, 50.0, 75.0, 100.0, 125.0, 150.0}) {
    pipeline::OfflineConfig config;
    config.link.channel.length_km = km;
    // Scale the block to the channel: real systems accumulate sifted bits
    // to a target block size before post-processing. Aim for ~40k sifted
    // bits, clamped to [2^20, 2^26] pulses - beyond the clamp the
    // dark-count wall shows up as aborts, which is the honest answer.
    config.pulses_per_block = sim::pulses_for_sifted_target(
        config.link, 40000.0, std::size_t{1} << 20, std::size_t{1} << 26);
    pipeline::OfflinePipeline qkd(config);
    // Warm-up with the measurement seed so lazy one-time work (PEG code
    // construction for the exact code the planner picks at this distance)
    // is paid before the clock starts.
    Xoshiro256 warm(static_cast<std::uint64_t>(km) * 31 + 3);
    (void)qkd.process_block(1, warm);

    // Deterministic per seed: every rep reproduces the same block outcome,
    // only wall-clock varies. Keep the best rep per stage - the bench
    // tracks kernel speed, not scheduler noise.
    constexpr int kReps = 3;
    engine::BlockOutcome outcome;
    for (int rep = 0; rep < kReps; ++rep) {
      Xoshiro256 rng(static_cast<std::uint64_t>(km) * 31 + 3);
      auto attempt = qkd.process_block(1, rng);
      if (rep == 0) {
        outcome = std::move(attempt);
        continue;
      }
      outcome.timings.sift = std::min(outcome.timings.sift,
                                      attempt.timings.sift);
      outcome.timings.estimate = std::min(outcome.timings.estimate,
                                          attempt.timings.estimate);
      outcome.timings.reconcile = std::min(outcome.timings.reconcile,
                                           attempt.timings.reconcile);
      outcome.timings.verify = std::min(outcome.timings.verify,
                                        attempt.timings.verify);
      outcome.timings.amplify = std::min(outcome.timings.amplify,
                                         attempt.timings.amplify);
    }

    Row row;
    row.km = km;
    row.ok = outcome.success;
    row.abort_reason = outcome.abort_reason;
    row.qber = outcome.qber_estimate;
    if (!outcome.success) {
      std::printf("%6.0f | %7.2f%% %10d %12s | %12s %12s | aborted: %s\n",
                  km, outcome.qber_estimate * 100, 0, "-", "-", "-",
                  outcome.abort_reason.c_str());
      rows.push_back(std::move(row));
      continue;
    }

    // Post-processing throughput: all-CPU wall-clock vs the engine's
    // mapper placement, priced for this block's actual workload.
    const double cpu_blocks_per_s =
        1.0 / outcome.timings.post_processing_total();
    engine::EngineOptions hetero_options = engine::EngineOptions::standard();
    hetero_options.workload.pulses = outcome.pulses;
    hetero_options.workload.sifted_bits = outcome.sifted_bits;
    hetero_options.workload.key_bits = outcome.reconciled_bits;
    hetero_options.workload.qber = outcome.qber_estimate;
    engine::PostprocessEngine hetero_engine(
        static_cast<const engine::PostprocessParams&>(config), hetero_options);
    const auto& placement = hetero_engine.placement();
    // Model-vs-model baseline: the same cost matrix with every stage pinned
    // to cpu-scalar (the measured cpu_blocks_per_s is reported alongside
    // but is not directly comparable to modeled numbers).
    const auto cpu_model =
        hetero::fixed_mapping(hetero_engine.mapping_problem(), 0);

    row.secret_bits = outcome.final_key_bits;
    row.skr_per_pulse = outcome.skr_per_pulse();
    row.reconcile_frames = outcome.reconcile_frames;
    row.decoder_iterations = outcome.decoder_iterations;
    row.reconcile_early_exit_frames = outcome.reconcile_early_exit_frames;
    row.reconcile_leaked_bits = outcome.leak_ec_bits;
    row.cpu_blocks_per_s = cpu_blocks_per_s;
    row.cpu_model_blocks_per_s = cpu_model.throughput_items_per_s;
    row.hetero_blocks_per_s = placement.predicted_items_per_s;
    row.timings = outcome.timings;
    row.stage_names = placement.stage_names;
    for (std::size_t s = 0; s < placement.stage_names.size(); ++s) {
      row.mapping.push_back(placement.device_of(s));
    }

    std::printf("%6.0f | %7.2f%% %10zu %12.2e | %12.2f %12.2f | key ok\n",
                km, outcome.qber_estimate * 100, outcome.final_key_bits,
                outcome.skr_per_pulse(), cpu_blocks_per_s,
                row.hetero_blocks_per_s);
    rows.push_back(std::move(row));
  }
  std::printf("\nshape check: SKR/pulse decays ~10x per 25 km; under the "
              "device model the optimized placement beats the all-cpu-scalar "
              "placement at every distance (cpu blk/s is measured wall-clock "
              "and not directly comparable to the modeled columns - see "
              "cpu_model_blocks_per_s in the JSON).\n\n");
  print_json(rows);
  return 0;
}
