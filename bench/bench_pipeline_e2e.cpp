// Experiment T2 - end-to-end secret key rate vs fiber distance, and the
// post-processing throughput of all-CPU vs heterogeneity-mapped execution.
//
// Column 1-4: physics (per-pulse SKR falls exponentially with distance;
// cutoff where dark counts dominate). Column 5-6: systems (blocks/s the
// post-processing chain sustains on CPU wall-clock vs the modeled
// hetero-mapped pipeline) - the paper-shaped claim is that CPU-only
// post-processing caps the key rate at metro distances while the
// accelerated mapping keeps up with the quantum layer.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>

#include "hetero/kernels.hpp"
#include "hetero/mapper.hpp"
#include "pipeline/offline.hpp"

int main() {
  using namespace qkdpp;

  ThreadPool pool(2);
  std::deque<hetero::Device> devices;
  devices.emplace_back(hetero::cpu_scalar_props());
  devices.emplace_back(hetero::cpu_parallel_props(pool.thread_count()), &pool);
  devices.emplace_back(hetero::gpu_sim_props(), &pool);
  devices.emplace_back(hetero::fpga_sim_props(), &pool);

  std::printf("T2: secret key rate vs distance (decoy BB84, blocks scaled "
              "to ~40k sifted bits, LDPC)\n\n");
  std::printf("%6s | %8s %10s %12s | %12s %12s | %s\n", "km", "QBER",
              "secret b", "SKR/pulse", "cpu blk/s", "hetero blk/s",
              "verdict");

  for (const double km : {10.0, 25.0, 50.0, 75.0, 100.0, 125.0, 150.0}) {
    pipeline::OfflineConfig config;
    config.link.channel.length_km = km;
    // Scale the block to the channel: real systems accumulate sifted bits
    // to a target block size before post-processing. Aim for ~40k sifted
    // bits, clamped to [2^20, 2^26] pulses - beyond the clamp the
    // dark-count wall shows up as aborts, which is the honest answer.
    {
      const sim::AnalyticLink model(config.link);
      const auto& source = config.link.source;
      const double gain = source.p_signal * model.gain(source.mu_signal) +
                          source.p_decoy * model.gain(source.mu_decoy) +
                          source.p_vacuum * model.y0();
      const double wanted = 40000.0 / (0.5 * gain);
      config.pulses_per_block = static_cast<std::size_t>(
          std::clamp(wanted, double{1 << 20}, double{1 << 26}));
    }
    pipeline::OfflinePipeline qkd(config);
    Xoshiro256 rng(static_cast<std::uint64_t>(km) * 31 + 3);
    // Warm-up builds codes.
    Xoshiro256 warm(1);
    (void)qkd.process_block(0, warm);

    const auto outcome = qkd.process_block(1, rng);

    if (!outcome.success) {
      std::printf("%6.0f | %7.2f%% %10d %12s | %12s %12s | aborted: %s\n",
                  km, outcome.qber_estimate * 100, 0, "-", "-", "-",
                  outcome.abort_reason.c_str());
      continue;
    }

    // Post-processing throughput: all-CPU wall-clock vs hetero mapping.
    const double cpu_blocks_per_s =
        1.0 / outcome.timings.post_processing_total();

    // Build the mapping problem from this block's stage costs. CPU columns:
    // measured; accelerator columns: modeled from kernel work estimates for
    // the block's dominant kernels.
    hetero::MappingProblem problem;
    problem.stage_names = {"sift+estimate", "reconcile", "verify+amplify"};
    for (const auto& device : devices) {
      problem.device_names.push_back(device.name());
    }
    const double sift_cost =
        outcome.timings.sift + outcome.timings.estimate;
    const double reconcile_cpu = outcome.timings.reconcile;
    const double pa_cpu = outcome.timings.verify + outcome.timings.amplify;
    // Accelerator models for the two offloadable stages (decode ~ 30 iters
    // over the block's frames; toeplitz over the reconciled key).
    const double frame_bits = 16384.0;
    const double frames =
        std::max(1.0, static_cast<double>(outcome.reconciled_bits) / frame_bits);
    auto modeled = [&](const hetero::Device& device, double ops,
                       double bytes_touched, double transferred) {
      return device.model_seconds({ops, bytes_touched, transferred});
    };
    const double decode_ops = frames * 30.0 * frame_bits * 3.0 *
                              hetero::kOpsPerEdge;
    const double pa_n = static_cast<double>(outcome.reconciled_bits);
    const double pa_fft = 3.0 * pa_n * std::log2(std::max(2.0, pa_n)) *
                          hetero::kOpsPerButterfly;
    problem.seconds_per_item = {
        {sift_cost, sift_cost, hetero::kInfeasible, hetero::kInfeasible},
        {reconcile_cpu, reconcile_cpu * 0.7,
         modeled(devices[2], decode_ops, decode_ops, frames * frame_bits),
         modeled(devices[3], decode_ops * 2, decode_ops, frames * frame_bits)},
        {pa_cpu, pa_cpu * 0.8,
         modeled(devices[2], pa_fft, pa_fft * 0.4, pa_n / 4),
         modeled(devices[3], pa_fft * 4, pa_fft, pa_n / 4)},
    };
    const auto mapping = hetero::optimize_mapping(problem);
    const double hetero_blocks_per_s = mapping.throughput_items_per_s;

    std::printf("%6.0f | %7.2f%% %10zu %12.2e | %12.2f %12.2f | key ok\n",
                km, outcome.qber_estimate * 100, outcome.final_key_bits,
                outcome.skr_per_pulse(), cpu_blocks_per_s,
                hetero_blocks_per_s);
  }
  std::printf("\nshape check: SKR/pulse decays ~10x per 25 km; hetero "
              "blk/s exceeds cpu blk/s by >5x at every distance (the "
              "post-processing ceiling lifts).\n");
  return 0;
}
