// Shared helpers for the table-printing bench harnesses (the benches that
// reproduce figure/table *series* rather than micro-op timings; those use
// google-benchmark directly).
#pragma once

#include <cstdio>
#include <vector>

#include "common/bitvec.hpp"
#include "common/rng.hpp"
#include "reconcile/ldpc_decoder.hpp"

namespace qkdpp::benchutil {

/// Flip each bit independently with probability q (BSC workload generator).
inline BitVec corrupt(const BitVec& key, double q, Xoshiro256& rng) {
  BitVec noisy = key;
  for (std::size_t i = 0; i < key.size(); ++i) {
    if (rng.bernoulli(q)) noisy.flip(i);
  }
  return noisy;
}

/// Prepared syndrome-decoding instance for decoder benches.
struct DecodeInstance {
  BitVec alice;
  BitVec syndrome;
  std::vector<float> llr;
};

inline DecodeInstance make_instance(const reconcile::LdpcCode& code, double q,
                                    Xoshiro256& rng) {
  DecodeInstance instance;
  instance.alice = rng.random_bits(code.n());
  const BitVec bob = corrupt(instance.alice, q, rng);
  instance.syndrome = code.syndrome(instance.alice);
  const float channel = reconcile::bsc_llr(q);
  instance.llr.resize(code.n());
  for (std::size_t v = 0; v < code.n(); ++v) {
    instance.llr[v] = bob.get(v) ? -channel : channel;
  }
  return instance;
}

inline void print_header(const char* title, const char* columns) {
  std::printf("\n=== %s ===\n%s\n", title, columns);
}

}  // namespace qkdpp::benchutil
