// Orchestrator scale sweep: aggregate secret-key throughput from 1 to 128
// concurrent links with small blocks - the contention gate for the
// lock-free refactor (SPSC stream rings, sharded KeyStore, work-stealing
// pool, per-block arenas).
//
// Three self-gating checks ride on the sweep:
//   * conservation: every arm drains every store and proves zero lost and
//     zero duplicate bits (ids unique, drained bits == deposited bits ==
//     the report's secret bits);
//   * determinism: the 8-link arm runs twice with the same seeds and must
//     produce byte-identical key material per link;
//   * scaling: the 128-link aggregate secret_bits_per_s must reach the
//     parallelism available to it. The gate is normalized by the host's
//     core count W: ideal = min(128, W) / min(8, W), and the measured
//     128/8 ratio must be >= 0.8 x min(8, ideal). On >= 64 cores this is
//     the paper-shaped ">= 8x the 8-link figure" claim (with 20% wall
//     noise tolerance); on small hosts it degrades to "adding 120 links
//     costs at most 20% of aggregate throughput" - the pure-contention
//     reading, which is the part the refactor owns on any machine.
//
// The final stdout line is a machine-readable JSON summary; secret-bit
// totals are seed-deterministic (engine fast path, no wall-clock in the
// key path) and gate the cross-PR baseline machine-independently.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "service/link_orchestrator.hpp"
#include "sim/link_config.hpp"

namespace {

using namespace qkdpp;

struct ArmResult {
  std::size_t links = 0;
  std::size_t workers = 0;
  std::uint64_t secret_bits = 0;
  std::uint64_t blocks_ok = 0;
  std::uint64_t blocks_aborted = 0;
  double wall_seconds = 0.0;
  double secret_bits_per_s = 0.0;
  ThreadPool::Stats pool;
  bool conservation_ok = true;
  /// Concatenated drained key bytes per link (determinism comparison).
  std::vector<std::vector<std::uint8_t>> drained;
};

service::OrchestratorConfig make_config(std::size_t n_links) {
  service::OrchestratorConfig config;
  config.store.capacity_bits = std::uint64_t{1} << 22;  // roomy: no rejects
  for (std::size_t i = 0; i < n_links; ++i) {
    service::LinkSpec spec;
    spec.name = "link-" + std::to_string(i);
    // Short metro spans, staggered 5..19 km so arms mix work sizes a bit.
    spec.link.channel.length_km = 5.0 + static_cast<double>(i % 8) * 2.0;
    // Small blocks (~12k sifted bits): the per-block work is tiny, so the
    // sweep measures handoff/contention cost, not reconcile throughput.
    spec.pulses_per_block = sim::pulses_for_sifted_target(
        spec.link, 12000.0, std::size_t{1} << 16, std::size_t{1} << 22);
    spec.blocks = 2;
    spec.rng_seed = 1000 + i;  // arm-independent: link i is identical in
                               // every arm that includes it
    config.links.push_back(std::move(spec));
  }
  return config;
}

/// Run one arm and drain every store, checking exact conservation.
ArmResult run_arm(std::size_t n_links) {
  ArmResult arm;
  arm.links = n_links;
  service::LinkOrchestrator orchestrator(make_config(n_links));
  const auto report = orchestrator.run();

  arm.workers = report.pool.threads;
  arm.secret_bits = report.secret_bits;
  arm.blocks_ok = report.blocks_ok;
  arm.blocks_aborted = report.blocks_aborted;
  arm.wall_seconds = report.wall_seconds;
  arm.secret_bits_per_s = report.secret_bits_per_s;
  arm.pool = report.pool;

  arm.drained.resize(n_links);
  for (std::size_t i = 0; i < n_links; ++i) {
    auto& store = orchestrator.key_store(i);
    std::uint64_t drained_bits = 0;
    std::set<std::uint64_t> ids;
    while (auto key = store.get_key("scale-drain")) {
      drained_bits += key->bits.size();
      if (!ids.insert(key->key_id).second) arm.conservation_ok = false;
      const auto bytes = key->bits.to_bytes();
      arm.drained[i].insert(arm.drained[i].end(), bytes.begin(), bytes.end());
    }
    // Zero lost bits: everything deposited is drained, nothing was
    // rejected, and the link report agrees with the store ledger.
    if (drained_bits != store.total_deposited_bits() ||
        drained_bits != store.total_consumed_bits() ||
        drained_bits != report.links[i].secret_bits ||
        store.rejected_keys() != 0 || store.bits_available() != 0 ||
        store.keys_available() != 0) {
      arm.conservation_ok = false;
    }
  }
  return arm;
}

void print_pool_json(const ThreadPool::Stats& pool) {
  std::printf("{\"threads\":%zu,\"queue_depth\":%zu,\"busy_workers\":%zu,"
              "\"submitted\":%llu,\"executed\":%llu,\"stolen\":%llu}",
              pool.threads, pool.queue_depth, pool.busy_workers,
              static_cast<unsigned long long>(pool.submitted),
              static_cast<unsigned long long>(pool.executed),
              static_cast<unsigned long long>(pool.stolen));
}

}  // namespace

int main() {
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t sweep[] = {1, 2, 8, 32, 128};

  std::printf("orchestrator_scale: 1 -> 128 links, ~12k sifted bits/block, "
              "2 blocks each, %zu hardware threads\n\n", hw);

  std::vector<ArmResult> arms;
  bool conservation_ok = true;
  double rate8 = 0.0;
  double rate128 = 0.0;
  std::uint64_t secret_bits_total = 0;
  for (const std::size_t n : sweep) {
    ArmResult arm = run_arm(n);
    conservation_ok = conservation_ok && arm.conservation_ok;
    if (n == 8) rate8 = arm.secret_bits_per_s;
    if (n == 128) rate128 = arm.secret_bits_per_s;
    secret_bits_total += arm.secret_bits;
    std::printf("%4zu links | %3zu workers | %9llu bits | %7.2f s | "
                "%10.0f bits/s | stolen %llu\n",
                arm.links, arm.workers,
                static_cast<unsigned long long>(arm.secret_bits),
                arm.wall_seconds, arm.secret_bits_per_s,
                static_cast<unsigned long long>(arm.pool.stolen));
    arms.push_back(std::move(arm));
  }

  // Determinism: rerun the 8-link arm with the same seeds; every link's
  // drained key material must be byte-identical.
  ArmResult rerun = run_arm(8);
  conservation_ok = conservation_ok && rerun.conservation_ok;
  bool determinism_ok = true;
  for (const ArmResult& arm : arms) {
    if (arm.links != 8) continue;
    determinism_ok = arm.drained == rerun.drained &&
                     arm.secret_bits == rerun.secret_bits;
  }

  const double ideal_ratio =
      static_cast<double>(std::min<std::size_t>(128, hw)) /
      static_cast<double>(std::min<std::size_t>(8, hw));
  const double gate_min_ratio = 0.8 * std::min(8.0, ideal_ratio);
  const double ratio = rate8 > 0 ? rate128 / rate8 : 0.0;
  const bool scale_gate_ok = ratio >= gate_min_ratio;

  std::printf("\n128/8 rate ratio %.2f (ideal %.2f on %zu threads, gate >= "
              "%.2f): %s\nconservation (zero lost/duplicate bits): %s\n"
              "same-seed byte-identity: %s\n",
              ratio, ideal_ratio, hw, gate_min_ratio,
              scale_gate_ok ? "PASS" : "FAIL",
              conservation_ok ? "PASS" : "FAIL",
              determinism_ok ? "PASS" : "FAIL");

  std::printf("{\"bench\":\"orchestrator_scale\",\"unit\":"
              "\"secret_bits_per_s\",\"hw_threads\":%zu,\"rows\":[", hw);
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const ArmResult& arm = arms[i];
    std::printf("%s{\"links\":%zu,\"workers\":%zu,\"secret_bits\":%llu,"
                "\"blocks_ok\":%llu,\"blocks_aborted\":%llu,"
                "\"wall_seconds\":%.3f,\"secret_bits_per_s\":%.1f,"
                "\"pool\":",
                i ? "," : "", arm.links, arm.workers,
                static_cast<unsigned long long>(arm.secret_bits),
                static_cast<unsigned long long>(arm.blocks_ok),
                static_cast<unsigned long long>(arm.blocks_aborted),
                arm.wall_seconds, arm.secret_bits_per_s);
    print_pool_json(arm.pool);
    std::printf("}");
  }
  std::printf("],\"scale\":{\"rate_8\":%.1f,\"rate_128\":%.1f,"
              "\"ratio\":%.3f,\"ideal_ratio\":%.3f,\"gate_min_ratio\":%.3f,"
              "\"secret_bits_total\":%llu,\"scale_gate_ok\":%s,"
              "\"conservation_ok\":%s,\"determinism_ok\":%s}}\n",
              rate8, rate128, ratio, ideal_ratio, gate_min_ratio,
              static_cast<unsigned long long>(secret_bits_total),
              scale_gate_ok ? "true" : "false",
              conservation_ok ? "true" : "false",
              determinism_ok ? "true" : "false");

  return (scale_gate_ok && conservation_ok && determinism_ok) ? 0 : 1;
}
