// Reconciliation engine A/B bench: legacy float belief propagation vs the
// batched int8 lockstep decoder, on byte-identical blocks.
//
// Each distance simulates ONE detection record, then post-processes it with
// both decoder arms from the same seed - the sifted material, the sampled
// QBER and the frame payloads are identical, so any reconcile-stage delta is
// the decoder, not the physics. The bench self-gates: the batched arm must
// clear kMinItemsPerS10km through the reconcile stage at 10 km (5x the
// pre-batching recorded throughput), and must not lose reconcile or
// end-to-end time to the legacy arm at any distance where both complete.
// A violated gate exits non-zero, which fails scripts/run_benches.sh.
//
// The final stdout line is a machine-readable JSON summary.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "engine/sim_adapter.hpp"
#include "pipeline/offline.hpp"
#include "sim/bb84.hpp"

namespace {

using namespace qkdpp;

// Headline gate: the pre-batching pipeline reconciled 6.44 blocks/s at
// 10 km (bench/baseline.json history); the batched engine must clear 5x
// that. An absolute floor rather than the in-run A/B ratio because the
// legacy arm's convergence is seed-luck (a lucky block decodes in 10
// iterations, an unlucky one in 300) - the floor pins the claim to the
// recorded trajectory instead of the luck of one draw.
constexpr double kMinItemsPerS10km = 5.0 * 6.44;

struct Arm {
  bool ok = false;
  std::string abort_reason;
  double reconcile_s = 0.0;  ///< best rep
  double e2e_s = 0.0;        ///< best rep, post-processing total
  std::uint64_t frames = 0;
  std::uint64_t iterations = 0;
  std::uint64_t early_exit_frames = 0;
  std::uint64_t leaked_bits = 0;
  std::size_t secret_bits = 0;

  double items_per_s() const {
    return reconcile_s > 0.0 ? 1.0 / reconcile_s : 0.0;
  }
  double blocks_per_s() const { return e2e_s > 0.0 ? 1.0 / e2e_s : 0.0; }
  double iterations_mean() const {
    return frames ? static_cast<double>(iterations) / static_cast<double>(frames)
                  : 0.0;
  }
  double early_exit_rate() const {
    return frames ? static_cast<double>(early_exit_frames) /
                        static_cast<double>(frames)
                  : 0.0;
  }
};

struct Row {
  double km = 0.0;
  double qber = 0.0;
  Arm legacy;
  Arm batched;
};

// Run one decoder arm over a pre-simulated record: warm-up once (pays lazy
// PEG construction for the code this arm's planner picks), then keep the
// best of kReps - outcomes are deterministic per seed, only wall-clock
// varies.
Arm run_arm(const engine::PostprocessParams& params,
            const engine::BlockInput& input, std::uint64_t rng_seed) {
  engine::PostprocessEngine engine(params, engine::EngineOptions::cpu_only());
  {
    Xoshiro256 warm(rng_seed);
    (void)engine.process_block(input, 1, warm);
  }
  constexpr int kReps = 3;
  Arm arm;
  for (int rep = 0; rep < kReps; ++rep) {
    Xoshiro256 rng(rng_seed);
    const auto outcome = engine.process_block(input, 1, rng);
    if (rep == 0) {
      arm.ok = outcome.success;
      arm.abort_reason = outcome.abort_reason;
      arm.reconcile_s = outcome.timings.reconcile;
      arm.e2e_s = outcome.timings.post_processing_total();
      arm.frames = outcome.reconcile_frames;
      arm.iterations = outcome.decoder_iterations;
      arm.early_exit_frames = outcome.reconcile_early_exit_frames;
      arm.leaked_bits = outcome.leak_ec_bits;
      arm.secret_bits = outcome.final_key_bits;
      continue;
    }
    arm.reconcile_s = std::min(arm.reconcile_s, outcome.timings.reconcile);
    arm.e2e_s = std::min(arm.e2e_s, outcome.timings.post_processing_total());
  }
  return arm;
}

void print_arm_json(const char* name, const Arm& arm) {
  std::printf(",\"%s\":{\"ok\":%s", name, arm.ok ? "true" : "false");
  if (!arm.ok) {
    std::printf(",\"abort\":\"%s\"", arm.abort_reason.c_str());
  }
  std::printf(",\"reconcile_items_per_s\":%.2f,\"e2e_blocks_per_s\":%.4f"
              ",\"frames\":%llu,\"iterations_mean\":%.2f"
              ",\"early_exit_rate\":%.3f,\"leaked_bits\":%llu"
              ",\"secret_bits\":%zu}",
              arm.items_per_s(), arm.blocks_per_s(),
              static_cast<unsigned long long>(arm.frames),
              arm.iterations_mean(), arm.early_exit_rate(),
              static_cast<unsigned long long>(arm.leaked_bits),
              arm.secret_bits);
}

}  // namespace

int main() {
  std::printf("Reconcile A/B: legacy float BP vs batched int8 lockstep "
              "decoder (identical blocks per distance)\n\n");
  std::printf("%6s | %8s | %12s %12s %8s | %12s %12s | %s\n", "km", "QBER",
              "legacy it/s", "batch it/s", "speedup", "legacy blk/s",
              "batch blk/s", "verdict");

  std::vector<Row> rows;
  for (const double km : {10.0, 25.0, 50.0, 75.0, 100.0, 125.0, 150.0}) {
    pipeline::OfflineConfig config;
    config.link.channel.length_km = km;
    config.pulses_per_block = sim::pulses_for_sifted_target(
        config.link, 40000.0, std::size_t{1} << 20, std::size_t{1} << 26);

    // One simulated record per distance, shared by both arms: the decoder
    // comparison sees byte-identical sifted material.
    const sim::Bb84Simulator simulator(config.link);
    const std::uint64_t seed = static_cast<std::uint64_t>(km) * 31 + 3;
    Xoshiro256 sim_rng(seed);
    const sim::DetectionRecord record =
        simulator.run(config.pulses_per_block, sim_rng);
    const engine::BlockInput input = engine::make_block_input(record, 1);

    engine::PostprocessParams legacy_params = config;
    legacy_params.ldpc.decoder.quantized = false;
    engine::PostprocessParams batched_params = config;
    batched_params.ldpc.decoder.quantized = true;

    Row row;
    row.km = km;
    row.legacy = run_arm(legacy_params, input, seed * 131 + 7);
    row.batched = run_arm(batched_params, input, seed * 131 + 7);

    const bool both_ok = row.legacy.ok && row.batched.ok;
    if (both_ok) {
      row.qber = sim::Bb84Simulator::stats(record).total.qber();
      const double speedup =
          row.legacy.reconcile_s > 0.0
              ? row.legacy.reconcile_s / row.batched.reconcile_s
              : 0.0;
      std::printf("%6.0f | %7.2f%% | %12.2f %12.2f %7.2fx | %12.2f %12.2f "
                  "| %s\n",
                  km, row.qber * 100, row.legacy.items_per_s(),
                  row.batched.items_per_s(), speedup,
                  row.legacy.blocks_per_s(), row.batched.blocks_per_s(),
                  row.batched.e2e_s <= row.legacy.e2e_s ? "e2e faster"
                                                        : "e2e SLOWER");
    } else {
      std::printf("%6.0f | %8s | %12s %12s %8s | %12s %12s | legacy: %s, "
                  "batched: %s\n",
                  km, "-", "-", "-", "-", "-", "-",
                  row.legacy.ok ? "ok" : row.legacy.abort_reason.c_str(),
                  row.batched.ok ? "ok" : row.batched.abort_reason.c_str());
    }
    rows.push_back(std::move(row));
  }

  // --- gates -------------------------------------------------------------
  bool gate_ok = true;
  double items_10km = 0.0;
  for (const Row& row : rows) {
    if (row.km == 10.0 && row.batched.ok) {
      items_10km = row.batched.items_per_s();
      if (items_10km < kMinItemsPerS10km) {
        gate_ok = false;
        std::printf("\nGATE VIOLATION: 10 km batched reconcile %.2f items/s "
                    "< required %.2f\n",
                    items_10km, kMinItemsPerS10km);
      }
    }
    if (!(row.legacy.ok && row.batched.ok)) continue;  // aborted rows don't gate
    if (row.batched.reconcile_s > row.legacy.reconcile_s) {
      gate_ok = false;
      std::printf("\nGATE VIOLATION: %g km batched reconcile %.4fs slower "
                  "than legacy %.4fs\n",
                  row.km, row.batched.reconcile_s, row.legacy.reconcile_s);
    }
    if (row.batched.e2e_s > row.legacy.e2e_s) {
      gate_ok = false;
      std::printf("\nGATE VIOLATION: %g km batched e2e %.4fs slower than "
                  "legacy %.4fs\n",
                  row.km, row.batched.e2e_s, row.legacy.e2e_s);
    }
  }
  if (items_10km == 0.0) {
    gate_ok = false;
    std::printf("\nGATE VIOLATION: 10 km batched row missing or aborted - "
                "the headline throughput gate could not run\n");
  }
  std::printf("\ngate: 10 km batched reconcile %.2f items/s (need >= %.2f), "
              "batched >= legacy reconcile and e2e at every completed "
              "distance: %s\n\n",
              items_10km, kMinItemsPerS10km, gate_ok ? "PASS" : "FAIL");

  std::printf("{\"bench\":\"reconcile\",\"unit\":\"items_per_s\",\"rows\":[");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::printf("%s{\"km\":%.0f", i ? "," : "", row.km);
    print_arm_json("legacy", row.legacy);
    print_arm_json("batched", row.batched);
    if (row.legacy.ok && row.batched.ok) {
      std::printf(",\"reconcile_speedup\":%.2f,\"e2e_speedup\":%.3f",
                  row.legacy.reconcile_s / row.batched.reconcile_s,
                  row.batched.e2e_s > 0.0 ? row.legacy.e2e_s / row.batched.e2e_s
                                          : 0.0);
    }
    std::printf("}");
  }
  std::printf("],\"gate\":{\"reconcile_items_per_s_10km\":%.2f,"
              "\"min_items_per_s_10km\":%.2f,\"ok\":%s}}\n",
              items_10km, kMinItemsPerS10km, gate_ok ? "true" : "false");
  return gate_ok ? 0 : 1;
}
