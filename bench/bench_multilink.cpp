// Multi-link aggregate throughput: N concurrent links of distinct lengths
// distilling over one shared device set into bounded key stores.
//
// The paper-shaped claim: post-processing must keep up with a *network* of
// links, not one - so the number that matters is aggregate secret-key
// throughput when metro, regional and WAN spans contend for the same
// devices. Columns: per-link secret bits/s and blocks/s (wall-clock,
// concurrent), then the fleet aggregate.
//
// The final stdout line is a machine-readable JSON summary (per-link and
// aggregate bits/s + blocks/s) for the cross-PR perf trajectory.
#include <cstdio>
#include <string>
#include <vector>

#include "service/link_orchestrator.hpp"

namespace {

void print_json(const qkdpp::service::OrchestratorReport& report) {
  std::printf("{\"bench\":\"multilink\",\"unit\":\"secret_bits_per_s\","
              "\"rows\":[");
  for (std::size_t i = 0; i < report.links.size(); ++i) {
    const auto& link = report.links[i];
    std::printf("%s{\"link\":\"%s\",\"km\":%.0f,\"blocks_ok\":%llu,"
                "\"blocks_aborted\":%llu,\"secret_bits\":%llu,"
                "\"secret_bits_per_s\":%.1f,\"blocks_per_s\":%.3f,"
                "\"rejected_bits\":%llu,\"mapping\":[",
                i ? "," : "", link.name.c_str(), link.length_km,
                static_cast<unsigned long long>(link.blocks_ok),
                static_cast<unsigned long long>(link.blocks_aborted),
                static_cast<unsigned long long>(link.secret_bits),
                link.secret_bits_per_s, link.blocks_per_s,
                static_cast<unsigned long long>(link.rejected_bits));
    for (std::size_t s = 0; s < link.stage_devices.size(); ++s) {
      std::printf("%s\"%s\"", s ? "," : "", link.stage_devices[s].c_str());
    }
    std::printf("]}");
  }
  std::printf("],\"aggregate\":{\"secret_bits\":%llu,\"wall_seconds\":%.3f,"
              "\"secret_bits_per_s\":%.1f,\"blocks_per_s\":%.3f,"
              "\"blocks_ok\":%llu,\"blocks_aborted\":%llu}}\n",
              static_cast<unsigned long long>(report.secret_bits),
              report.wall_seconds, report.secret_bits_per_s,
              report.blocks_per_s,
              static_cast<unsigned long long>(report.blocks_ok),
              static_cast<unsigned long long>(report.blocks_aborted));
}

}  // namespace

int main() {
  using namespace qkdpp;

  service::OrchestratorConfig config;
  config.store.capacity_bits = 1 << 22;  // roomy: measure throughput, not bound
  struct Span {
    const char* name;
    double km;
  };
  // Metro / regional / WAN mix - the fleet a trusted node actually serves.
  const Span spans[] = {{"metro-5", 5.0},   {"metro-15", 15.0},
                        {"metro-25", 25.0}, {"regional-50", 50.0},
                        {"wan-75", 75.0},   {"wan-100", 100.0}};
  std::uint64_t seed = 11;
  for (const auto& span : spans) {
    service::LinkSpec spec;
    spec.name = span.name;
    spec.link.channel.length_km = span.km;
    // Accumulate to ~40k sifted bits per block (what real systems do), so
    // WAN spans distill instead of aborting on short keys.
    spec.pulses_per_block = sim::pulses_for_sifted_target(
        spec.link, 40000.0, std::size_t{1} << 20, std::size_t{1} << 25);
    spec.blocks = 3;
    spec.rng_seed = seed++;
    config.links.push_back(std::move(spec));
  }

  std::printf("multilink: %zu concurrent links over one shared device set, "
              "blocks scaled to ~40k sifted bits, 3 blocks each\n\n",
              config.links.size());

  service::LinkOrchestrator orchestrator(std::move(config));
  const auto report = orchestrator.run();

  std::printf("%-12s | %6s | %4s %5s | %10s %12s %10s\n", "link", "km", "ok",
              "abort", "secret b", "bits/s", "blocks/s");
  for (const auto& link : report.links) {
    std::printf("%-12s | %6.0f | %4llu %5llu | %10llu %12.0f %10.3f\n",
                link.name.c_str(), link.length_km,
                static_cast<unsigned long long>(link.blocks_ok),
                static_cast<unsigned long long>(link.blocks_aborted),
                static_cast<unsigned long long>(link.secret_bits),
                link.secret_bits_per_s, link.blocks_per_s);
  }
  std::printf("%-12s | %6s | %4llu %5llu | %10llu %12.0f %10.3f\n\n",
              "aggregate", "-",
              static_cast<unsigned long long>(report.blocks_ok),
              static_cast<unsigned long long>(report.blocks_aborted),
              static_cast<unsigned long long>(report.secret_bits),
              report.secret_bits_per_s, report.blocks_per_s);

  print_json(report);
  return 0;
}
