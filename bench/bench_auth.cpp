// Experiment F6 - authentication is never the bottleneck: GF(2^128)
// polynomial hashing throughput across message sizes, Wegman-Carter
// sign/verify latency, and the CRC32C framing check for contrast.
// google-benchmark binary.
#include <benchmark/benchmark.h>

#include "auth/wegman_carter.hpp"
#include "common/crc.hpp"
#include "common/rng.hpp"

namespace {

using namespace qkdpp;

std::vector<std::uint8_t> make_message(std::size_t bytes) {
  Xoshiro256 rng(bytes + 1);
  std::vector<std::uint8_t> message(bytes);
  for (auto& b : message) b = static_cast<std::uint8_t>(rng.next_u64());
  return message;
}

void BM_PolyHash(benchmark::State& state) {
  const auto message = make_message(static_cast<std::size_t>(state.range(0)));
  const U128 r{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  for (auto _ : state) {
    benchmark::DoNotOptimize(auth::poly_hash(r, message));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

void BM_Crc32c(benchmark::State& state) {
  const auto message = make_message(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c(message));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

void BM_WegmanCarterSignVerify(benchmark::State& state) {
  const auto message = make_message(static_cast<std::size_t>(state.range(0)));
  Xoshiro256 rng(5);
  // Large pre-shared pool so draw cost, not refill, is measured.
  const BitVec shared = rng.random_bits(auth::kTagKeyBits * 4096);
  for (auto _ : state) {
    state.PauseTiming();
    auth::KeyPool sign_pool(shared);
    auth::KeyPool verify_pool(shared);
    auth::WegmanCarter signer(sign_pool);
    auth::WegmanCarter verifier(verify_pool);
    state.ResumeTiming();
    const auth::Tag tag = signer.sign(message);
    benchmark::DoNotOptimize(verifier.verify(message, tag));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}

}  // namespace

BENCHMARK(BM_PolyHash)->RangeMultiplier(8)->Range(64, 1 << 22);
BENCHMARK(BM_Crc32c)->RangeMultiplier(8)->Range(64, 1 << 22);
BENCHMARK(BM_WegmanCarterSignVerify)->RangeMultiplier(64)->Range(64, 1 << 20);

BENCHMARK_MAIN();
