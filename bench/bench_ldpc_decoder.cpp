// Experiment F2 - LDPC decoding throughput vs QBER per backend.
//
// Fixed n=16384 frames, code rate matched to each QBER via the frame
// planner. CPU columns are measured wall time; gpu-sim / fpga-sim are
// modeled device time (DESIGN.md substitution). Expected shape: CPU
// throughput collapses as QBER (and thus BP iterations) grows; gpu-sim
// degrades more slowly (bandwidth-rich); fpga-sim is flat (fixed-depth
// pipeline) and wins at the high-QBER end until the GPU's batch advantage.
#include <cstdio>
#include <deque>

#include "bench_util.hpp"
#include "hetero/kernels.hpp"
#include "reconcile/rate_adapt.hpp"

int main() {
  using namespace qkdpp;
  using benchutil::DecodeInstance;

  ThreadPool pool(2);
  std::deque<hetero::Device> devices;
  devices.emplace_back(hetero::cpu_scalar_props());
  devices.emplace_back(hetero::cpu_parallel_props(pool.thread_count()), &pool);
  devices.emplace_back(hetero::gpu_sim_props(), &pool);
  devices.emplace_back(hetero::fpga_sim_props(), &pool);

  std::printf("F2: LDPC syndrome-decoding throughput (Mbit/s of sifted key) "
              "vs QBER, n=16384, batch=8\n\n");
  std::printf("%6s %6s %5s |", "QBER", "rate", "iter");
  for (const auto& device : devices) std::printf(" %12s", device.name().c_str());
  std::printf("\n");

  const int kBatch = 8;
  for (const double q : {0.01, 0.02, 0.03, 0.05, 0.07, 0.09}) {
    const auto plan = reconcile::plan_frame(16384, q, 1.45);
    const auto& code = reconcile::code_by_id(plan.code_id);
    Xoshiro256 rng(static_cast<std::uint64_t>(q * 1e5));

    std::vector<DecodeInstance> instances;
    std::vector<hetero::DecodeJob> jobs;
    for (int i = 0; i < kBatch; ++i) {
      instances.push_back(benchutil::make_instance(code, q, rng));
    }
    for (const auto& instance : instances) {
      jobs.push_back({&instance.syndrome, &instance.llr});
    }

    std::printf("%5.1f%% %6.3f", q * 100, code.rate());
    unsigned iterations = 0;
    bool iter_printed = false;
    std::string row;
    for (auto& device : devices) {
      std::vector<reconcile::DecodeResult> results;
      reconcile::DecoderConfig config;  // layered min-sum on CPU
      const double seconds =
          hetero::timed_ldpc_decode(device, code, jobs, config, results);
      if (!iter_printed) {
        for (const auto& r : results) iterations += r.iterations;
        iterations /= kBatch;
        std::printf(" %5u |", iterations);
        iter_printed = true;
      }
      const double bits = static_cast<double>(code.n()) * kBatch;
      char cell[32];
      std::snprintf(cell, sizeof cell, " %12.1f", bits / seconds / 1e6);
      row += cell;
    }
    std::printf("%s\n", row.c_str());
  }
  std::printf("\nshape check: cpu columns fall with QBER (iterations "
              "climb); fpga-sim is flat; gpu-sim leads overall.\n");
  return 0;
}
