// Experiment F8 - ablations over the design choices DESIGN.md calls out:
//   (a) mapping policy: optimizer vs all-CPU vs all-GPU vs greedy
//   (b) decoder schedule: layered vs flooding (iterations to converge)
//   (c) decoder algorithm: normalized min-sum vs sum-product
//   (d) batching: per-frame vs batched accelerator launches
// Expected shape: optimizer >= every baseline (it is provably optimal
// under the model); layered halves iterations; min-sum trades a small
// iteration increase for much cheaper check updates; batching dominates at
// small frames.
#include <cstdio>
#include <deque>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "hetero/kernels.hpp"
#include "hetero/mapper.hpp"

namespace {

using namespace qkdpp;

void mapping_ablation() {
  ThreadPool pool(2);
  std::deque<hetero::Device> devices;
  devices.emplace_back(hetero::cpu_scalar_props());
  devices.emplace_back(hetero::cpu_parallel_props(pool.thread_count()), &pool);
  devices.emplace_back(hetero::gpu_sim_props(), &pool);
  devices.emplace_back(hetero::fpga_sim_props(), &pool);

  // Measured/modeled stage costs for a 25 km block (seconds/item), probed
  // through the kernels like hetero_offload does.
  const auto& code = reconcile::code_by_id(12);
  Xoshiro256 rng(5);
  auto instance = benchutil::make_instance(code, 0.025, rng);
  const hetero::DecodeJob job{&instance.syndrome, &instance.llr};
  const std::size_t pa_n = 1 << 17;
  const BitVec pa_input = rng.random_bits(pa_n);
  const BitVec pa_seed = rng.random_bits(pa_n + pa_n / 2 - 1);
  const auto message = pa_input.to_bytes();

  hetero::MappingProblem problem;
  problem.stage_names = {"decode", "amplify", "auth"};
  for (const auto& device : devices) {
    problem.device_names.push_back(device.name());
  }
  for (const auto& stage : problem.stage_names) {
    std::vector<double> row;
    for (auto& device : devices) {
      double seconds = 0;
      if (stage == std::string("decode")) {
        std::vector<reconcile::DecodeResult> results;
        seconds = hetero::timed_ldpc_decode(device, code, std::span(&job, 1),
                                            reconcile::DecoderConfig{},
                                            results);
      } else if (stage == std::string("amplify")) {
        BitVec out;
        seconds =
            hetero::timed_toeplitz(device, pa_input, pa_seed, pa_n / 2, out);
      } else {
        U128 tag;
        seconds = hetero::timed_poly_tag(device, message, 3, tag);
      }
      row.push_back(seconds);
    }
    problem.seconds_per_item.push_back(std::move(row));
  }

  std::printf("F8a: mapping policy (items/s under the sharing model)\n");
  const auto best = hetero::optimize_mapping(problem);
  std::printf("  %-18s %12.1f\n", "optimizer", best.throughput_items_per_s);
  std::printf("  %-18s %12.1f\n", "greedy",
              hetero::greedy_mapping(problem).throughput_items_per_s);
  for (std::uint32_t d = 0; d < devices.size(); ++d) {
    std::printf("  all-%-14s %12.1f\n", devices[d].name().c_str(),
                hetero::fixed_mapping(problem, d).throughput_items_per_s);
  }
}

void decoder_ablation() {
  const auto& code = reconcile::code_by_id(9);  // 16k rate 0.5
  std::printf("\nF8b/c: decoder schedule x algorithm at n=%zu "
              "(iterations | Mbit/s, averaged over QBER sweep)\n\n",
              code.n());
  std::printf("%26s | %10s | %10s\n", "", "iters", "Mbit/s");
  struct Variant {
    const char* name;
    reconcile::BpAlgorithm algorithm;
    reconcile::BpSchedule schedule;
  };
  const Variant variants[] = {
      {"layered min-sum", reconcile::BpAlgorithm::kMinSum,
       reconcile::BpSchedule::kLayered},
      {"flooding min-sum", reconcile::BpAlgorithm::kMinSum,
       reconcile::BpSchedule::kFlooding},
      {"layered sum-product", reconcile::BpAlgorithm::kSumProduct,
       reconcile::BpSchedule::kLayered},
      {"flooding sum-product", reconcile::BpAlgorithm::kSumProduct,
       reconcile::BpSchedule::kFlooding},
  };
  for (const auto& variant : variants) {
    double iterations = 0;
    double seconds = 0;
    int cases = 0;
    for (const double q : {0.03, 0.05, 0.065}) {
      Xoshiro256 rng(static_cast<std::uint64_t>(q * 1e4) + 11);
      auto instance = benchutil::make_instance(code, q, rng);
      reconcile::DecoderConfig config;
      config.algorithm = variant.algorithm;
      config.schedule = variant.schedule;
      config.max_iterations = 120;
      Stopwatch stopwatch;
      const auto result = reconcile::decode_syndrome(code, instance.syndrome,
                                                     instance.llr, config);
      seconds += stopwatch.seconds();
      if (result.converged) {
        iterations += result.iterations;
        ++cases;
      }
    }
    std::printf("%26s | %10.1f | %10.1f\n", variant.name,
                cases ? iterations / cases : -1.0,
                3 * static_cast<double>(code.n()) / seconds / 1e6);
  }
}

void batching_ablation() {
  ThreadPool pool(2);
  hetero::Device gpu(hetero::gpu_sim_props(), &pool);
  std::printf("\nF8d: gpu-sim launch batching (modeled seconds for 32 "
              "frames)\n\n%10s | %14s %14s %10s\n", "n", "batch=1",
              "batch=32", "gain");
  for (const std::uint32_t code_id : {0u, 3u, 9u}) {
    const auto& code = reconcile::code_by_id(code_id);
    Xoshiro256 rng(code_id + 21);
    std::vector<benchutil::DecodeInstance> instances;
    std::vector<hetero::DecodeJob> jobs;
    for (int i = 0; i < 32; ++i) {
      instances.push_back(benchutil::make_instance(code, 0.03, rng));
    }
    for (const auto& instance : instances) {
      jobs.push_back({&instance.syndrome, &instance.llr});
    }
    std::vector<reconcile::DecodeResult> results;
    double single = 0;
    for (const auto& job : jobs) {
      single += hetero::timed_ldpc_decode(gpu, code, std::span(&job, 1),
                                          reconcile::DecoderConfig{}, results);
    }
    const double batched = hetero::timed_ldpc_decode(
        gpu, code, jobs, reconcile::DecoderConfig{}, results);
    std::printf("%10zu | %14.6f %14.6f %9.2fx\n", code.n(), single, batched,
                single / batched);
  }
}

}  // namespace

int main() {
  mapping_ablation();
  decoder_ablation();
  batching_ablation();
  std::printf("\nshape check: optimizer row is the max of F8a; layered "
              "halves flooding's iterations; batching gain shrinks as n "
              "grows (compute amortizes the launch by itself).\n");
  return 0;
}
