// Key-delivery API throughput: many concurrent SAE consumers driving the
// full serialize -> dispatch -> segment -> deliver path against a *live*
// multi-link orchestrator (distillation and delivery overlap, exactly the
// deployment posture).
//
// Topology: 3 links x 2 SAE pairs = 6 pairs = 12 concurrent SAE consumer
// threads (6 masters requesting enc_keys, 6 slaves fetching dec_keys by
// UUID), every request and response a JSON byte string through the
// Dispatcher.
//
// Self-gating correctness (non-zero exit on violation):
//   * zero duplicate key deliveries - no UUID is ever handed out twice,
//     and every slave fetch returns bit-identical material to the master's
//   * zero lost key bits - per link: delivered + available (store +
//     residual buffers) + rejected == deposited + rejected, i.e. the
//     conservation law delivered + available == deposited
//
// The final stdout line is a machine-readable JSON summary for the
// cross-PR perf trajectory (folded into BENCH_pipeline.json).
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <future>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/dispatcher.hpp"
#include "api/key_delivery.hpp"
#include "common/stats.hpp"
#include "service/link_orchestrator.hpp"

namespace {

using namespace qkdpp;

struct PairPlan {
  std::string master;
  std::string slave;
  std::string link;
};

/// Master -> slave handoff: delivered key ids plus the master's view of
/// the material, so the slave can verify bit-identical delivery.
struct Handoff {
  std::mutex mutex;
  std::condition_variable ready;
  std::deque<api::DeliveredKey> queue;
  bool master_done = false;
};

struct PairOutcome {
  std::uint64_t requests = 0;
  std::uint64_t delivered_keys = 0;
  std::uint64_t delivered_bits = 0;
  std::uint64_t collected_keys = 0;
  std::uint64_t mismatched_keys = 0;
  std::vector<std::string> ids;
};

constexpr std::uint64_t kKeySizeBits = 256;
constexpr std::uint64_t kKeysPerRequest = 8;

void run_master(api::Dispatcher& dispatcher, const PairPlan& plan,
                const std::atomic<bool>& distillation_done, Handoff& handoff,
                PairOutcome& outcome) {
  api::KeyRequest key_request;
  key_request.number = kKeysPerRequest;
  key_request.size = kKeySizeBits;
  const api::Request request{"POST", "/api/v1/keys/" + plan.slave +
                                         "/enc_keys",
                             plan.master, key_request.to_json()};
  const std::string wire_request = request.to_json().dump();

  while (true) {
    // The fully serialized transport path: JSON text in, JSON text out.
    const std::string wire_response = dispatcher.dispatch(wire_request);
    ++outcome.requests;
    const auto response =
        api::Response::from_json(api::Json::parse(wire_response));
    if (response.ok()) {
      auto container = api::KeyContainer::from_json(response.body);
      std::scoped_lock lock(handoff.mutex);
      for (auto& key : container.keys) {
        ++outcome.delivered_keys;
        outcome.delivered_bits += kKeySizeBits;
        outcome.ids.push_back(key.key_id);
        handoff.queue.push_back(std::move(key));
      }
      handoff.ready.notify_one();
      continue;
    }
    if (response.status != api::kStatusUnavailable) {
      std::fprintf(stderr, "master %s: unexpected status %d\n",
                   plan.master.c_str(), response.status);
      break;
    }
    // 503 while links still distill: back off and retry; after the last
    // deposit a final 503 means the store and residual are truly dry.
    if (distillation_done.load(std::memory_order_acquire)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::scoped_lock lock(handoff.mutex);
  handoff.master_done = true;
  handoff.ready.notify_one();
}

void run_slave(api::Dispatcher& dispatcher, const PairPlan& plan,
               Handoff& handoff, PairOutcome& outcome) {
  while (true) {
    std::vector<api::DeliveredKey> batch;
    {
      std::unique_lock lock(handoff.mutex);
      handoff.ready.wait(lock, [&] {
        return !handoff.queue.empty() || handoff.master_done;
      });
      while (!handoff.queue.empty() &&
             batch.size() < kKeysPerRequest) {
        batch.push_back(std::move(handoff.queue.front()));
        handoff.queue.pop_front();
      }
      if (batch.empty() && handoff.master_done) return;
    }
    if (batch.empty()) continue;

    api::KeyIdsRequest ids_request;
    for (const auto& key : batch) ids_request.key_ids.push_back(key.key_id);
    const api::Request request{"POST", "/api/v1/keys/" + plan.master +
                                           "/dec_keys",
                               plan.slave, ids_request.to_json()};
    const std::string wire_response =
        dispatcher.dispatch(request.to_json().dump());
    ++outcome.requests;
    const auto response =
        api::Response::from_json(api::Json::parse(wire_response));
    if (!response.ok()) {
      outcome.mismatched_keys += batch.size();
      continue;
    }
    const auto container = api::KeyContainer::from_json(response.body);
    for (std::size_t i = 0; i < container.keys.size(); ++i) {
      ++outcome.collected_keys;
      if (container.keys[i] != batch[i]) ++outcome.mismatched_keys;
    }
  }
}

}  // namespace

int main() {
  service::OrchestratorConfig config;
  config.store.capacity_bits = 1 << 22;
  const struct {
    const char* name;
    double km;
  } spans[] = {{"metro", 5.0}, {"regional", 25.0}, {"backbone", 50.0}};
  std::uint64_t seed = 29;
  for (const auto& span : spans) {
    service::LinkSpec spec;
    spec.name = span.name;
    spec.link.channel.length_km = span.km;
    spec.pulses_per_block = sim::pulses_for_sifted_target(
        spec.link, 30000.0, std::size_t{1} << 19, std::size_t{1} << 23);
    spec.blocks = 3;
    spec.rng_seed = seed++;
    config.links.push_back(std::move(spec));
  }
  service::LinkOrchestrator orchestrator(std::move(config));

  api::KeyDeliveryService service(orchestrator);
  std::vector<PairPlan> plans;
  for (const auto* link : {"metro", "regional", "backbone"}) {
    for (int p = 0; p < 2; ++p) {
      PairPlan plan;
      plan.master = std::string("sae-") + link + "-m" + std::to_string(p);
      plan.slave = std::string("sae-") + link + "-s" + std::to_string(p);
      plan.link = link;
      plans.push_back(plan);
      service.register_pair({plan.master, plan.slave, plan.link,
                             kKeySizeBits, kKeysPerRequest, 4096, 64});
    }
  }
  api::Dispatcher dispatcher(service);

  std::printf("key_delivery: %zu SAE pairs (%zu consumer threads) over %zu "
              "links, %llu-bit keys, %llu keys/request, JSON dispatch\n",
              plans.size(), plans.size() * 2, orchestrator.link_count(),
              static_cast<unsigned long long>(kKeySizeBits),
              static_cast<unsigned long long>(kKeysPerRequest));

  std::atomic<bool> distillation_done{false};
  std::deque<Handoff> handoffs(plans.size());
  std::vector<PairOutcome> master_outcomes(plans.size());
  std::vector<PairOutcome> slave_outcomes(plans.size());

  Stopwatch clock;
  auto distillation = std::async(std::launch::async, [&] {
    const auto report = orchestrator.run();
    distillation_done.store(true, std::memory_order_release);
    return report;
  });

  std::vector<std::thread> consumers;
  consumers.reserve(plans.size() * 2);
  for (std::size_t i = 0; i < plans.size(); ++i) {
    consumers.emplace_back([&, i] {
      run_master(dispatcher, plans[i], distillation_done, handoffs[i],
                 master_outcomes[i]);
    });
    consumers.emplace_back([&, i] {
      run_slave(dispatcher, plans[i], handoffs[i], slave_outcomes[i]);
    });
  }
  const auto report = distillation.get();
  for (auto& thread : consumers) thread.join();
  const double wall_seconds = clock.seconds();

  // --- correctness gates --------------------------------------------------
  std::uint64_t requests = 0, delivered_keys = 0, delivered_bits = 0;
  std::uint64_t collected_keys = 0, mismatched = 0, duplicates = 0;
  std::set<std::string> all_ids;
  for (std::size_t i = 0; i < plans.size(); ++i) {
    requests += master_outcomes[i].requests + slave_outcomes[i].requests;
    delivered_keys += master_outcomes[i].delivered_keys;
    delivered_bits += master_outcomes[i].delivered_bits;
    collected_keys += slave_outcomes[i].collected_keys;
    mismatched += slave_outcomes[i].mismatched_keys;
    for (const auto& id : master_outcomes[i].ids) {
      if (!all_ids.insert(id).second) ++duplicates;
    }
  }

  // Zero lost bits, per link: what the engines deposited either reached a
  // master (delivered), waits segmented-but-small in a pair's residual
  // buffer, or still sits in the store. Rejected material is accounted
  // separately by the store's typed reject path.
  std::uint64_t lost_bits = 0;
  std::printf("\n%-9s | %10s %10s %10s %10s %9s\n", "link", "deposited",
              "delivered", "buffered", "in store", "rejected");
  for (std::size_t l = 0; l < orchestrator.link_count(); ++l) {
    auto& store = orchestrator.key_store(l);
    const std::string& link_name = orchestrator.link_spec(l).name;
    std::uint64_t delivered = 0, buffered = 0;
    for (const auto& plan : plans) {
      if (plan.link != link_name) continue;
      const auto stats = *service.pair_stats(plan.master, plan.slave);
      delivered += stats.delivered_bits;
      buffered += stats.buffered_bits;
    }
    const std::uint64_t deposited = store.total_deposited_bits();
    const std::uint64_t available = store.bits_available() + buffered;
    if (delivered + available != deposited) {
      // Gate both directions: a deficit is lost material, a surplus is
      // double-counted (duplicated) material - either fails the run.
      const std::uint64_t accounted = delivered + available;
      lost_bits += accounted > deposited ? accounted - deposited
                                         : deposited - accounted;
      std::fprintf(stderr, "conservation violated on %s\n",
                   link_name.c_str());
    }
    std::printf("%-9s | %10llu %10llu %10llu %10llu %9llu\n",
                link_name.c_str(),
                static_cast<unsigned long long>(deposited),
                static_cast<unsigned long long>(delivered),
                static_cast<unsigned long long>(buffered),
                static_cast<unsigned long long>(store.bits_available()),
                static_cast<unsigned long long>(store.rejected_bits()));
  }

  const bool gate_ok = duplicates == 0 && lost_bits == 0 && mismatched == 0 &&
                       collected_keys == delivered_keys &&
                       delivered_keys > 0;
  std::printf("\n%llu requests in %.2f s (%.0f req/s), %llu keys x %llu bits "
              "delivered (%.0f bits/s), %llu collected, %llu secret bits "
              "distilled\n",
              static_cast<unsigned long long>(requests), wall_seconds,
              requests / wall_seconds,
              static_cast<unsigned long long>(delivered_keys),
              static_cast<unsigned long long>(kKeySizeBits),
              delivered_bits / wall_seconds,
              static_cast<unsigned long long>(collected_keys),
              static_cast<unsigned long long>(report.secret_bits));
  std::printf("gates: duplicate_ids=%llu lost_bits=%llu mismatched=%llu -> "
              "%s\n\n",
              static_cast<unsigned long long>(duplicates),
              static_cast<unsigned long long>(lost_bits),
              static_cast<unsigned long long>(mismatched),
              gate_ok ? "OK" : "FAILED");

  std::printf("{\"bench\":\"key_delivery\",\"unit\":\"delivered_bits_per_s\","
              "\"pairs\":%zu,\"consumers\":%zu,\"requests\":%llu,"
              "\"delivered_keys\":%llu,\"delivered_bits\":%llu,"
              "\"collected_keys\":%llu,\"wall_seconds\":%.3f,"
              "\"requests_per_s\":%.1f,\"delivered_bits_per_s\":%.1f,"
              "\"duplicate_ids\":%llu,\"lost_bits\":%llu,"
              "\"gate_ok\":%s}\n",
              plans.size(), plans.size() * 2,
              static_cast<unsigned long long>(requests),
              static_cast<unsigned long long>(delivered_keys),
              static_cast<unsigned long long>(delivered_bits),
              static_cast<unsigned long long>(collected_keys), wall_seconds,
              requests / wall_seconds, delivered_bits / wall_seconds,
              static_cast<unsigned long long>(duplicates),
              static_cast<unsigned long long>(lost_bits),
              gate_ok ? "true" : "false");
  return gate_ok ? 0 : 1;
}
