// Experiment F1 - motivation figure: where does CPU-only post-processing
// spend its time? Runs offline blocks at several link lengths and prints
// the per-stage wall-clock share. Expected shape: reconciliation dominates,
// privacy amplification second; sifting/estimation/verification are noise.
#include <cstdio>

#include "pipeline/offline.hpp"

int main() {
  using namespace qkdpp;

  std::printf("F1: CPU-only stage time breakdown (LDPC reconciliation, "
              "2^20-pulse blocks)\n\n");
  std::printf("%6s %8s | %8s %10s %10s %8s %10s | %10s\n", "km", "QBER",
              "sift", "estimate", "reconcile", "verify", "amplify",
              "total ms");

  for (const double km : {10.0, 25.0, 40.0}) {
    pipeline::OfflineConfig config;
    config.link.channel.length_km = km;
    config.pulses_per_block = 1 << 20;

    pipeline::OfflinePipeline qkd(config);
    // Warm-up block (builds the LDPC code once, as a deployment would).
    Xoshiro256 warm_rng(1);
    (void)qkd.process_block(0, warm_rng);

    pipeline::StageTimings sum;
    double qber = 0;
    const int kBlocks = 3;
    int produced = 0;
    Xoshiro256 rng(static_cast<std::uint64_t>(km) * 7 + 2);
    for (int b = 1; b <= kBlocks; ++b) {
      const auto outcome = qkd.process_block(b, rng);
      if (!outcome.success) continue;
      ++produced;
      qber += outcome.qber_estimate;
      sum.sift += outcome.timings.sift;
      sum.estimate += outcome.timings.estimate;
      sum.reconcile += outcome.timings.reconcile;
      sum.verify += outcome.timings.verify;
      sum.amplify += outcome.timings.amplify;
    }
    if (produced == 0) {
      std::printf("%6.0f: all blocks aborted\n", km);
      continue;
    }
    const double total = sum.post_processing_total();
    std::printf("%6.0f %7.2f%% | %7.1f%% %9.1f%% %9.1f%% %7.1f%% %9.1f%% | %10.1f\n",
                km, qber / produced * 100, sum.sift / total * 100,
                sum.estimate / total * 100, sum.reconcile / total * 100,
                sum.verify / total * 100, sum.amplify / total * 100,
                total / produced * 1e3);
  }
  std::printf("\nshape check: reconciliation should dominate (>60%%), "
              "amplification second; this is the imbalance heterogeneous "
              "offload targets.\n");
  return 0;
}
