// Experiment F7 - host thread scaling of the two heavy kernels: flooding
// LDPC decode and Toeplitz/NTT privacy amplification. Expected shape:
// decode scales with cores until memory-bound; PA scales worse (transform
// is bandwidth-hungry); both flatten past the physical core count - the
// ceiling that motivates discrete accelerators in the first place.
#include <cstdio>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "common/threadpool.hpp"
#include "privacy/toeplitz.hpp"
#include "reconcile/rate_adapt.hpp"

int main() {
  using namespace qkdpp;

  const unsigned hardware = std::thread::hardware_concurrency();
  const auto& code = reconcile::code_by_id(9);  // 16k rate 0.5
  const double q = 0.05;
  Xoshiro256 rng(3);
  auto instance = benchutil::make_instance(code, q, rng);

  const std::size_t pa_n = 1 << 19;
  const BitVec pa_input = rng.random_bits(pa_n);
  const BitVec pa_seed = rng.random_bits(pa_n + pa_n / 2 - 1);

  std::printf("F7: host thread scaling (hardware_concurrency = %u)\n\n",
              hardware);
  std::printf("%8s | %16s %8s | %16s\n", "threads", "decode Mbit/s",
              "speedup", "toeplitz Mbit/s");

  double base_decode = 0;
  for (unsigned threads = 1; threads <= 2 * hardware; threads *= 2) {
    ThreadPool pool(threads);

    reconcile::DecoderConfig config;
    config.schedule = reconcile::BpSchedule::kFlooding;
    config.pool = threads == 1 ? nullptr : &pool;
    Stopwatch stopwatch;
    const int kReps = 4;
    for (int r = 0; r < kReps; ++r) {
      const auto result = reconcile::decode_syndrome(
          code, instance.syndrome, instance.llr, config);
      if (!result.converged) std::printf("  [decode failed]\n");
    }
    const double decode_s = stopwatch.seconds() / kReps;
    const double decode_mbps =
        static_cast<double>(code.n()) / decode_s / 1e6;
    if (threads == 1) base_decode = decode_mbps;

    // Toeplitz NTT is single-threaded in-core; measure it alongside to
    // show the contrast (flat line = no host parallelism exploited).
    stopwatch.reset();
    for (int r = 0; r < kReps; ++r) {
      (void)privacy::toeplitz_hash_ntt(pa_input, pa_seed, pa_n / 2);
    }
    const double pa_s = stopwatch.seconds() / kReps;

    std::printf("%8u | %16.1f %7.2fx | %16.1f\n", threads, decode_mbps,
                decode_mbps / base_decode,
                static_cast<double>(pa_n) / pa_s / 1e6);
  }
  std::printf("\nshape check: decode speedup saturates at the physical core "
              "count; NTT column is flat (transform not host-parallel) - "
              "the gap accelerators close.\n");
  return 0;
}
