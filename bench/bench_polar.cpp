// Experiment F4b - three-way reconciliation comparison: Cascade vs LDPC vs
// polar SC at equal block material. Expected shape: Cascade wins
// efficiency but is interactive; LDPC (BP) wins one-way efficiency at short
// blocks; polar's O(N log N) regular dataflow gives it the best CPU
// throughput of the one-way schemes while its SC finite-length gap costs
// efficiency at low QBER - the hardware-friendliness vs leakage trade that
// motivates list decoding in production stacks.
#include <cstdio>

#include "bench_util.hpp"
#include "common/entropy.hpp"
#include "common/stats.hpp"
#include "reconcile/polar.hpp"
#include "reconcile/reconciler.hpp"

int main() {
  using namespace qkdpp;
  using namespace qkdpp::reconcile;

  const std::size_t n = 1 << 14;
  std::printf("F4b: reconciliation families at n=%zu (f_EC | Mbit/s | "
              "one-way?)\n\n",
              n);
  std::printf("%6s | %8s %8s | %8s %8s | %8s %8s %6s\n", "QBER", "casc f",
              "Mbit/s", "ldpc f", "Mbit/s", "polar f", "Mbit/s", "FER");

  for (const double q : {0.01, 0.02, 0.03, 0.05}) {
    Xoshiro256 rng(static_cast<std::uint64_t>(q * 1e6) + 3);
    const BitVec alice = rng.random_bits(n);
    const BitVec bob = benchutil::corrupt(alice, q, rng);

    CascadeConfig cascade_config;
    cascade_config.qber_hint = q;
    cascade_config.passes = 6;
    Stopwatch stopwatch;
    const auto cascade =
        cascade_reconcile_local(alice, bob, q, cascade_config);
    const double cascade_s = stopwatch.seconds();

    LdpcReconcilerConfig ldpc_config;
    const auto plan = plan_frame_fitting(n, q, ldpc_config.f_target);
    Xoshiro256 private_rng(5);
    const BitVec alice_payload = alice.subvec(0, plan.payload_bits);
    const BitVec bob_payload = bob.subvec(0, plan.payload_bits);
    stopwatch.reset();
    const auto ldpc = ldpc_reconcile_local(alice_payload, bob_payload, q,
                                           plan, 11, ldpc_config, private_rng);
    const double ldpc_s = stopwatch.seconds();

    // Polar: average several blocks for a stable FER estimate.
    int polar_fail = 0;
    double polar_f = 0;
    stopwatch.reset();
    const int kTrials = 4;
    for (int t = 0; t < kTrials; ++t) {
      const BitVec a = rng.random_bits(n);
      const BitVec b = benchutil::corrupt(a, q, rng);
      const auto polar = polar_reconcile_local(a, b, q, 1.5);
      polar_fail += !polar.success;
      polar_f += polar.efficiency;
    }
    const double polar_s = stopwatch.seconds() / kTrials;

    std::printf("%5.1f%% | %8.3f %8.2f | %8.3f %8.2f | %8.3f %8.2f %5.2f\n",
                q * 100, cascade.efficiency,
                static_cast<double>(n) / cascade_s / 1e6, ldpc.efficiency,
                static_cast<double>(plan.payload_bits) / ldpc_s / 1e6,
                polar_f / kTrials, static_cast<double>(n) / polar_s / 1e6,
                static_cast<double>(polar_fail) / kTrials);
  }
  std::printf("\nshape check: polar throughput > ldpc throughput (regular "
              "dataflow, no BP iterations); polar f degrades toward low "
              "QBER (additive SC gap); cascade stays the efficiency "
              "champion.\n");
  return 0;
}
