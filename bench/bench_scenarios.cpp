// Static placement vs adaptive re-planning across the shipped time-varying
// link scenarios.
//
// The paper's heterogeneous-computing argument is strongest when the
// channel *changes*: stage costs shift with QBER and block volume, so a
// placement (and reconciler configuration) frozen at construction leaves
// secret key on the table the moment the fiber drifts, an eavesdropper
// shows up, or a device is hot-removed. Each scenario runs twice over one
// link and a fresh shared device set - once with ReplanPolicy::
// static_placement() (the PR-1 posture) and once with ReplanPolicy::
// adaptive() - using identical seeds, so the physics stream is identical
// and the secret-bit comparison is deterministic.
//
// Reported per arm: deterministic secret bits, wall-clock secret bits/s,
// and sustained secret bits per bottleneck-device-second (secret_bits /
// max over devices of charged busy seconds - the steady-state pipeline
// rate the mapper optimizes; CPU devices charge measured wall-clock, the
// simulated accelerators charge modeled time).
//
// The process exits non-zero unless adaptive >= static (secret bits) on
// every scenario, adaptive > 1.10 x static on device-hot-remove, and
// adaptive > 1.05 x static on qber-burst - the regression gate
// bench_compare.py and CI ride on. The final stdout line is a
// machine-readable JSON summary.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "service/link_orchestrator.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace qkdpp;

struct ArmResult {
  std::uint64_t secret_bits = 0;
  std::uint64_t blocks_ok = 0;
  std::uint64_t blocks_aborted = 0;
  std::uint64_t offline_aborts = 0;
  std::uint64_t replans = 0;
  double wall_bits_per_s = 0.0;
  double sustained_bits_per_s = 0.0;
  double bottleneck_busy_s = 0.0;
  std::vector<std::string> final_mapping;
};

struct ScenarioRow {
  std::string name;
  ArmResult fixed;     ///< static placement ("static" is a keyword)
  ArmResult adaptive;
  double bit_gain = 0.0;  ///< adaptive / static secret bits
};

ArmResult run_arm(const sim::ScenarioConfig& scenario, bool adaptive) {
  service::OrchestratorConfig config;
  config.store.capacity_bits = 1 << 22;  // roomy: measure rate, not bound
  config.replan = adaptive ? service::ReplanPolicy::adaptive()
                           : service::ReplanPolicy::static_placement();
  config.device_events = scenario.device_events;

  service::LinkSpec spec;
  spec.name = scenario.name;
  spec.link.channel.length_km = 25.0;
  spec.pulses_per_block = sim::pulses_for_sifted_target(
      spec.link, 30000.0, std::size_t{1} << 19, std::size_t{1} << 22);
  spec.blocks = scenario.blocks;
  spec.rng_seed = 42;  // identical physics stream in both arms
  spec.schedule = scenario.schedule;
  config.links.push_back(std::move(spec));

  service::LinkOrchestrator orchestrator(std::move(config));
  const auto report = orchestrator.run();
  const auto& link = report.links.at(0);

  ArmResult arm;
  arm.secret_bits = link.secret_bits;
  arm.blocks_ok = link.blocks_ok;
  arm.blocks_aborted = link.blocks_aborted;
  arm.offline_aborts = link.offline_aborts;
  arm.replans = link.replans;
  arm.wall_bits_per_s = link.secret_bits_per_s;
  arm.final_mapping = link.stage_devices;
  const auto& set = orchestrator.device_set();
  for (std::size_t d = 0; d < set.size(); ++d) {
    arm.bottleneck_busy_s =
        std::max(arm.bottleneck_busy_s, set.device(d).busy_seconds());
  }
  if (arm.bottleneck_busy_s > 0) {
    arm.sustained_bits_per_s =
        static_cast<double>(arm.secret_bits) / arm.bottleneck_busy_s;
  }
  return arm;
}

void print_json(const std::vector<ScenarioRow>& rows, bool gate_ok) {
  std::printf("{\"bench\":\"scenarios\",\"unit\":\"secret_bits_per_s\","
              "\"gate_ok\":%s,\"rows\":[",
              gate_ok ? "true" : "false");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    auto arm_json = [](const char* key, const ArmResult& arm) {
      std::printf("\"%s\":{\"secret_bits\":%llu,\"blocks_ok\":%llu,"
                  "\"blocks_aborted\":%llu,\"offline_aborts\":%llu,"
                  "\"replans\":%llu,\"wall_bits_per_s\":%.1f,"
                  "\"sustained_bits_per_s\":%.1f,\"mapping\":[",
                  key, static_cast<unsigned long long>(arm.secret_bits),
                  static_cast<unsigned long long>(arm.blocks_ok),
                  static_cast<unsigned long long>(arm.blocks_aborted),
                  static_cast<unsigned long long>(arm.offline_aborts),
                  static_cast<unsigned long long>(arm.replans),
                  arm.wall_bits_per_s, arm.sustained_bits_per_s);
      for (std::size_t s = 0; s < arm.final_mapping.size(); ++s) {
        std::printf("%s\"%s\"", s ? "," : "", arm.final_mapping[s].c_str());
      }
      std::printf("]}");
    };
    std::printf("%s{\"scenario\":\"%s\",", i ? "," : "", row.name.c_str());
    arm_json("static", row.fixed);
    std::printf(",");
    arm_json("adaptive", row.adaptive);
    std::printf(",\"bit_gain\":%.3f}", row.bit_gain);
  }
  std::printf("]}\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t blocks = 0;  // 0 = each scenario's shipped default
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      blocks = 10;
      continue;
    }
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(argv[i], &end, 10);
    if (end == argv[i] || *end != '\0' || parsed == 0) {
      std::fprintf(stderr, "usage: bench_scenarios [--quick | blocks>0]\n");
      return 2;
    }
    blocks = parsed;
  }

  const auto scenarios = sim::shipped_scenarios(blocks);
  std::printf("scenarios: static vs adaptive over %zu shipped scenarios, "
              "1 link @ 25 km, blocks sized to ~30k sifted bits\n\n",
              scenarios.size());

  std::vector<ScenarioRow> rows;
  bool gate_ok = true;
  std::string gate_log;
  for (const auto& scenario : scenarios) {
    ScenarioRow row;
    row.name = scenario.name;
    row.fixed = run_arm(scenario, /*adaptive=*/false);
    row.adaptive = run_arm(scenario, /*adaptive=*/true);
    row.bit_gain =
        row.fixed.secret_bits
            ? static_cast<double>(row.adaptive.secret_bits) /
                  static_cast<double>(row.fixed.secret_bits)
            : (row.adaptive.secret_bits ? 1e9 : 1.0);

    // The gate compares deterministic secret bits, not wall-clock, so a
    // loaded CI machine cannot flake it.
    if (row.adaptive.secret_bits < row.fixed.secret_bits) {
      gate_ok = false;
      gate_log += "  adaptive < static on " + row.name + "\n";
    }
    // Device-hot-remove is where replanning is the whole story (static
    // loses every block on the dead device), so adaptation must win big.
    // Qber-burst keeps a smaller bar: blind reconciliation now rescues
    // stale-rate frames with extra reveal rounds even on the static arm,
    // so replanning's edge there is leak efficiency, not block survival.
    const double min_gain = row.name == "device-hot-remove" ? 1.10
                            : row.name == "qber-burst"      ? 1.05
                                                            : 0.0;
    if (min_gain > 0.0 && row.bit_gain < min_gain) {
      gate_ok = false;
      gate_log += "  gain below " + std::to_string(min_gain) + " on " +
                  row.name + "\n";
    }
    rows.push_back(std::move(row));
  }

  std::printf("%-22s | %12s %12s | %7s | %5s %5s | %12s %12s\n", "scenario",
              "static bits", "adapt bits", "gain", "aborts", "repl",
              "static sus/s", "adapt sus/s");
  for (const auto& row : rows) {
    std::printf("%-22s | %12llu %12llu | %6.2fx | %5llu %5llu | %12.0f %12.0f\n",
                row.name.c_str(),
                static_cast<unsigned long long>(row.fixed.secret_bits),
                static_cast<unsigned long long>(row.adaptive.secret_bits),
                row.bit_gain,
                static_cast<unsigned long long>(row.fixed.blocks_aborted),
                static_cast<unsigned long long>(row.adaptive.replans),
                row.fixed.sustained_bits_per_s,
                row.adaptive.sustained_bits_per_s);
  }
  std::printf("\n");
  if (!gate_ok) {
    std::fprintf(stderr, "scenario gate FAILED:\n%s", gate_log.c_str());
  }

  print_json(rows, gate_ok);
  return gate_ok ? 0 : 1;
}
