// Chaos bench: the classical channel misbehaves, the stack must not.
//
// Phase 1 - goodput under loss. A two-link session-transport fleet runs
// three times with identical seeds: clean, and twice under a steady 5%
// drop + 1% corruption profile injected below the ARQ layer. Because the
// ARQ decorator delivers exactly-once in-order, the protocol transcript -
// and therefore every distilled key - must be byte-identical across all
// three runs; the faults may cost wall-clock (retransmission timeouts)
// but never key material. Gates:
//   * chaotic goodput (secret bits / wall s) >= 0.7x the clean run's
//   * chaotic key bytes == clean key bytes (zero lost/duplicated bits,
//     zero delivered keys failing verification)
//   * the two same-seed chaotic runs are byte-identical (determinism)
//   * faults were actually injected and actually healed (counters > 0)
//
// Phase 2 - delivery under chaos. Three links (steady loss, a loss burst,
// and a permanent outage that opens the circuit breaker) distill while SAE
// consumer threads drive the full JSON dispatcher path. Gates: zero
// duplicate key UUIDs, zero lost bits (store conservation), zero
// master/slave mismatches, the dark link's breaker opened, and the
// starved pair's final 503 names the open breaker with a Retry-After
// hint.
//
// Everything the gates compare is seeded and deterministic except the
// wall-clock goodput ratio, which gets a wide 0.7 margin precisely so a
// loaded CI machine cannot flake it. The final stdout line is a
// machine-readable JSON summary (folded into BENCH_pipeline.json).
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/dispatcher.hpp"
#include "api/key_delivery.hpp"
#include "common/stats.hpp"
#include "service/link_orchestrator.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace qkdpp;

constexpr std::uint64_t kForever = std::uint64_t{1} << 32;

protocol::FaultProfile steady_loss() {
  protocol::FaultProfile profile;
  profile.drop = 0.05;
  profile.corrupt = 0.01;
  return profile;
}

sim::ChannelFaultPhase phase_all_run(const protocol::FaultProfile& profile) {
  sim::ChannelFaultPhase phase;
  phase.begin_block = 0;
  phase.end_block = kForever;
  phase.profile = profile;
  return phase;
}

// ---------------------------------------------------------------------------
// Phase 1: goodput + byte-identity under steady loss.

struct DistillRun {
  std::uint64_t secret_bits = 0;
  std::uint64_t blocks_ok = 0;
  std::uint64_t blocks_aborted = 0;
  std::uint64_t mismatched_keys = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t faults_injected = 0;
  double wall_seconds = 0.0;
  double goodput_bits_per_s = 0.0;
  /// Every distilled key, drained from the stores in deposit order - the
  /// byte-identity gates compare these across runs.
  std::vector<std::uint8_t> key_bytes;
};

DistillRun run_distillation(const protocol::FaultProfile& profile,
                            std::uint64_t seed_base) {
  service::OrchestratorConfig config;
  config.store.capacity_bits = 1 << 22;
  std::uint64_t seed = seed_base;
  for (const char* name : {"east", "west"}) {
    service::LinkSpec spec;
    spec.name = name;
    spec.link.channel.length_km = 25.0;
    spec.pulses_per_block = std::size_t{1} << 20;
    spec.blocks = 4;
    spec.rng_seed = seed++;
    spec.params.ldpc.min_frame = 4096;
    spec.session_transport = true;
    if (profile.any()) {
      spec.schedule.channel_faults.push_back(phase_all_run(profile));
    }
    config.links.push_back(std::move(spec));
  }

  service::LinkOrchestrator orchestrator(std::move(config));
  Stopwatch clock;
  const auto report = orchestrator.run();
  DistillRun run;
  run.wall_seconds = clock.seconds();
  for (const auto& link : report.links) {
    run.secret_bits += link.secret_bits;
    run.blocks_ok += link.blocks_ok;
    run.blocks_aborted += link.blocks_aborted;
    run.mismatched_keys += link.mismatched_keys;
    run.retransmits += link.channel.retransmits;
    run.faults_injected += link.channel.faults_injected;
  }
  run.goodput_bits_per_s =
      run.wall_seconds > 0
          ? static_cast<double>(run.secret_bits) / run.wall_seconds
          : 0.0;
  for (std::size_t l = 0; l < orchestrator.link_count(); ++l) {
    auto& store = orchestrator.key_store(l);
    while (auto key = store.get_key("chaos-bench")) {
      const auto bytes = key->bits.to_bytes();
      run.key_bytes.insert(run.key_bytes.end(), bytes.begin(), bytes.end());
    }
  }
  return run;
}

// ---------------------------------------------------------------------------
// Phase 2: concurrent delivery through the dispatcher while links distill
// under faults (one of them terminally dark, so its breaker opens).

struct PairPlan {
  std::string master;
  std::string slave;
  std::string link;
};

struct Handoff {
  std::mutex mutex;
  std::condition_variable ready;
  std::deque<api::DeliveredKey> queue;
  bool master_done = false;
};

struct ConsumerOutcome {
  std::uint64_t requests = 0;
  std::uint64_t delivered_keys = 0;
  std::uint64_t delivered_bits = 0;
  std::uint64_t collected_keys = 0;
  std::uint64_t mismatched_keys = 0;
  std::uint64_t unavailable_503 = 0;
  std::vector<std::string> ids;
};

constexpr std::uint64_t kKeySizeBits = 256;
constexpr std::uint64_t kKeysPerRequest = 8;

void run_master(api::Dispatcher& dispatcher, const PairPlan& plan,
                const std::atomic<bool>& distillation_done, Handoff& handoff,
                ConsumerOutcome& outcome) {
  api::KeyRequest key_request;
  key_request.number = kKeysPerRequest;
  key_request.size = kKeySizeBits;
  const api::Request request{"POST",
                             "/api/v1/keys/" + plan.slave + "/enc_keys",
                             plan.master, key_request.to_json()};
  const std::string wire_request = request.to_json().dump();

  while (true) {
    const std::string wire_response = dispatcher.dispatch(wire_request);
    ++outcome.requests;
    const auto response =
        api::Response::from_json(api::Json::parse(wire_response));
    if (response.ok()) {
      auto container = api::KeyContainer::from_json(response.body);
      std::scoped_lock lock(handoff.mutex);
      for (auto& key : container.keys) {
        ++outcome.delivered_keys;
        outcome.delivered_bits += kKeySizeBits;
        outcome.ids.push_back(key.key_id);
        handoff.queue.push_back(std::move(key));
      }
      handoff.ready.notify_one();
      continue;
    }
    if (response.status != api::kStatusUnavailable) {
      std::fprintf(stderr, "master %s: unexpected status %d\n",
                   plan.master.c_str(), response.status);
      break;
    }
    // 503 is the degradation contract under chaos: starved store, open
    // breaker, or backpressure. Count it, back off, retry until the link
    // is done AND drained.
    ++outcome.unavailable_503;
    if (distillation_done.load(std::memory_order_acquire)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::scoped_lock lock(handoff.mutex);
  handoff.master_done = true;
  handoff.ready.notify_one();
}

void run_slave(api::Dispatcher& dispatcher, const PairPlan& plan,
               Handoff& handoff, ConsumerOutcome& outcome) {
  while (true) {
    std::vector<api::DeliveredKey> batch;
    {
      std::unique_lock lock(handoff.mutex);
      handoff.ready.wait(lock, [&] {
        return !handoff.queue.empty() || handoff.master_done;
      });
      while (!handoff.queue.empty() && batch.size() < kKeysPerRequest) {
        batch.push_back(std::move(handoff.queue.front()));
        handoff.queue.pop_front();
      }
      if (batch.empty() && handoff.master_done) return;
    }
    if (batch.empty()) continue;

    api::KeyIdsRequest ids_request;
    for (const auto& key : batch) ids_request.key_ids.push_back(key.key_id);
    const api::Request request{"POST",
                               "/api/v1/keys/" + plan.master + "/dec_keys",
                               plan.slave, ids_request.to_json()};
    const std::string wire_response =
        dispatcher.dispatch(request.to_json().dump());
    ++outcome.requests;
    const auto response =
        api::Response::from_json(api::Json::parse(wire_response));
    if (!response.ok()) {
      outcome.mismatched_keys += batch.size();
      continue;
    }
    const auto container = api::KeyContainer::from_json(response.body);
    for (std::size_t i = 0; i < container.keys.size(); ++i) {
      ++outcome.collected_keys;
      if (container.keys[i] != batch[i]) ++outcome.mismatched_keys;
    }
  }
}

struct DeliveryResult {
  std::uint64_t requests = 0;
  std::uint64_t delivered_keys = 0;
  std::uint64_t delivered_bits = 0;
  std::uint64_t collected_keys = 0;
  std::uint64_t mismatched = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t lost_bits = 0;
  std::uint64_t unavailable_503 = 0;
  std::uint64_t breaker_opens = 0;
  bool breaker_detail_ok = false;
  double wall_seconds = 0.0;
};

DeliveryResult run_delivery_under_chaos(std::uint64_t seed_base) {
  service::OrchestratorConfig config;
  config.store.capacity_bits = 1 << 22;
  config.breaker = service::CircuitBreakerPolicy::standard();

  // All three links reconcile with Cascade here: phase 2 gates delivery
  // accounting and breaker behavior, not throughput, and Cascade's
  // interactive convergence keeps every healthy block's success
  // deterministic (LDPC at this block size can shed a marginal clean
  // block, which would make the dark link's abort arithmetic seed-lucky).
  protocol::RetryPolicy fast;
  fast.max_retries = 5;
  fast.base_timeout = std::chrono::milliseconds{2};
  fast.exchange_deadline = std::chrono::milliseconds{5000};
  fast.close_linger = std::chrono::milliseconds{50};

  auto link = [&](const char* name, std::uint64_t blocks,
                  std::uint64_t seed) {
    service::LinkSpec spec;
    spec.name = name;
    spec.link.channel.length_km = 10.0;
    spec.pulses_per_block = std::size_t{1} << 18;
    spec.blocks = blocks;
    spec.rng_seed = seed;
    spec.params.method = protocol::ReconcileMethod::kCascade;
    spec.session_transport = true;
    spec.channel_retry = fast;
    return spec;
  };

  auto steady = link("steady", 5, seed_base + 60);
  steady.schedule.channel_faults.push_back(phase_all_run(steady_loss()));
  config.links.push_back(std::move(steady));

  auto bursty = link("bursty", 8, seed_base + 61);
  bursty.schedule = sim::loss_burst_scenario(8).schedule;
  config.links.push_back(std::move(bursty));

  // Dark from block 2 onward: banks two blocks of key, then every frame
  // drops until the end of the run - the breaker must open and stay open.
  auto dark = link("dark", 10, seed_base + 62);
  sim::ChannelFaultPhase outage;
  outage.begin_block = 2;
  outage.end_block = kForever;
  outage.profile.drop = 1.0;
  dark.schedule.channel_faults.push_back(outage);
  config.links.push_back(std::move(dark));

  service::LinkOrchestrator orchestrator(std::move(config));
  api::KeyDeliveryService service(orchestrator);
  std::vector<PairPlan> plans;
  for (const char* name : {"steady", "bursty", "dark"}) {
    PairPlan plan;
    plan.master = std::string("sae-") + name + "-m";
    plan.slave = std::string("sae-") + name + "-s";
    plan.link = name;
    plans.push_back(plan);
    service.register_pair({plan.master, plan.slave, plan.link, kKeySizeBits,
                           kKeysPerRequest, 4096, 64});
  }
  api::Dispatcher dispatcher(service);

  std::atomic<bool> distillation_done{false};
  std::deque<Handoff> handoffs(plans.size());
  std::vector<ConsumerOutcome> master_outcomes(plans.size());
  std::vector<ConsumerOutcome> slave_outcomes(plans.size());

  Stopwatch clock;
  auto distillation = std::async(std::launch::async, [&] {
    const auto report = orchestrator.run();
    distillation_done.store(true, std::memory_order_release);
    return report;
  });
  std::vector<std::thread> consumers;
  consumers.reserve(plans.size() * 2);
  for (std::size_t i = 0; i < plans.size(); ++i) {
    consumers.emplace_back([&, i] {
      run_master(dispatcher, plans[i], distillation_done, handoffs[i],
                 master_outcomes[i]);
    });
    consumers.emplace_back([&, i] {
      run_slave(dispatcher, plans[i], handoffs[i], slave_outcomes[i]);
    });
  }
  const auto report = distillation.get();
  for (auto& thread : consumers) thread.join();

  DeliveryResult result;
  result.wall_seconds = clock.seconds();
  std::set<std::string> all_ids;
  for (std::size_t i = 0; i < plans.size(); ++i) {
    result.requests +=
        master_outcomes[i].requests + slave_outcomes[i].requests;
    result.delivered_keys += master_outcomes[i].delivered_keys;
    result.delivered_bits += master_outcomes[i].delivered_bits;
    result.collected_keys += slave_outcomes[i].collected_keys;
    result.mismatched += slave_outcomes[i].mismatched_keys;
    result.unavailable_503 += master_outcomes[i].unavailable_503;
    for (const auto& id : master_outcomes[i].ids) {
      if (!all_ids.insert(id).second) ++result.duplicates;
    }
  }
  // Conservation per link: deposited == delivered + buffered + in store.
  for (std::size_t l = 0; l < orchestrator.link_count(); ++l) {
    auto& store = orchestrator.key_store(l);
    const std::string& link_name = orchestrator.link_spec(l).name;
    std::uint64_t delivered = 0, buffered = 0;
    for (const auto& plan : plans) {
      if (plan.link != link_name) continue;
      const auto stats = *service.pair_stats(plan.master, plan.slave);
      delivered += stats.delivered_bits;
      buffered += stats.buffered_bits;
    }
    const std::uint64_t deposited = store.total_deposited_bits();
    const std::uint64_t accounted =
        delivered + buffered + store.bits_available();
    if (accounted != deposited) {
      result.lost_bits += accounted > deposited ? accounted - deposited
                                                : deposited - accounted;
      std::fprintf(stderr, "conservation violated on %s\n",
                   link_name.c_str());
    }
  }
  for (const auto& link_report : report.links) {
    result.breaker_opens += link_report.breaker_opens;
    result.mismatched += link_report.mismatched_keys;
  }

  // The starved dark pair's 503 must be actionable: name the open breaker
  // and carry a Retry-After-style hint.
  api::KeyRequest drain;
  drain.number = kKeysPerRequest;
  drain.size = kKeySizeBits;
  const auto starved = service.get_key("sae-dark-m", "sae-dark-s", drain);
  bool named_breaker = false, named_retry = false;
  if (!starved.ok() && starved.error.status == api::kStatusUnavailable) {
    for (const auto& detail : starved.error.details) {
      named_breaker |= detail == "link_breaker=open";
      named_retry |= detail.rfind("retry_after_ms=", 0) == 0;
    }
  }
  result.breaker_detail_ok = named_breaker && named_retry;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  // Optional seed base (default 301): the nightly chaos matrix sweeps
  // this, so every gate below must hold for *any* seed, not a lucky one.
  std::uint64_t seed_base = 301;
  if (argc > 1) {
    char* end = nullptr;
    seed_base = std::strtoull(argv[1], &end, 10);
    if (end == argv[1] || *end != '\0' || seed_base == 0) {
      std::fprintf(stderr, "usage: bench_chaos [seed>0]\n");
      return 2;
    }
  }
  std::printf("chaos: 2 session links x 4 blocks @ 25 km, ARQ over injected "
              "faults; then 3 links (steady loss / burst / dark) through "
              "the JSON dispatcher\n\n");

  // --- phase 1 -----------------------------------------------------------
  // Untimed warmup: the first run pays one-time costs (LDPC code-table
  // construction), which would otherwise make whichever arm goes first
  // look slower and distort the goodput ratio.
  (void)run_distillation(protocol::FaultProfile{}, seed_base);
  const DistillRun clean = run_distillation(protocol::FaultProfile{}, seed_base);
  const DistillRun chaotic = run_distillation(steady_loss(), seed_base);
  const DistillRun replay = run_distillation(steady_loss(), seed_base);

  const double goodput_ratio =
      clean.goodput_bits_per_s > 0
          ? chaotic.goodput_bits_per_s / clean.goodput_bits_per_s
          : 0.0;
  const bool identical_bytes = chaotic.key_bytes == clean.key_bytes;
  // Determinism compares key material only: retransmit/fault counters are
  // wall-clock-dependent by design (a slow peer triggers a spurious
  // retransmit, and every extra send consumes a fault draw), so two
  // same-seed runs agree on every delivered byte but not on how many
  // times the ARQ had to try.
  const bool deterministic = chaotic.key_bytes == replay.key_bytes &&
                             chaotic.secret_bits == replay.secret_bits;

  std::printf("%-8s | %11s %9s %7s | %11s %11s %9s\n", "run", "secret bits",
              "blocks ok", "aborted", "goodput b/s", "retransmits",
              "injected");
  const struct {
    const char* name;
    const DistillRun* run;
  } rows[] = {{"clean", &clean}, {"chaotic", &chaotic}, {"replay", &replay}};
  for (const auto& row : rows) {
    std::printf("%-8s | %11llu %9llu %7llu | %11.0f %11llu %9llu\n",
                row.name,
                static_cast<unsigned long long>(row.run->secret_bits),
                static_cast<unsigned long long>(row.run->blocks_ok),
                static_cast<unsigned long long>(row.run->blocks_aborted),
                row.run->goodput_bits_per_s,
                static_cast<unsigned long long>(row.run->retransmits),
                static_cast<unsigned long long>(row.run->faults_injected));
  }
  std::printf("\ngoodput ratio %.3f (gate >= 0.7), key bytes %s clean, "
              "same-seed replay %s\n",
              goodput_ratio, identical_bytes ? "==" : "!=",
              deterministic ? "identical" : "DIVERGED");

  bool gate_ok = true;
  std::string gate_log;
  auto gate = [&](bool ok, const char* what) {
    if (!ok) {
      gate_ok = false;
      gate_log += std::string("  ") + what + "\n";
    }
  };
  gate(goodput_ratio >= 0.7, "chaotic goodput < 0.7x clean");
  gate(identical_bytes, "chaotic key bytes differ from clean");
  gate(deterministic, "same-seed chaotic runs diverged");
  gate(clean.mismatched_keys + chaotic.mismatched_keys +
               replay.mismatched_keys ==
           0,
       "a delivered key failed endpoint verification");
  gate(chaotic.faults_injected > 0, "fault injector never fired");
  gate(chaotic.retransmits > 0, "ARQ never retransmitted under loss");
  gate(clean.secret_bits > 0, "clean run distilled nothing");

  // --- phase 2 -----------------------------------------------------------
  const DeliveryResult delivery = run_delivery_under_chaos(seed_base);
  std::printf("\ndelivery under chaos: %llu requests in %.2f s, %llu keys "
              "(%llu bits) delivered, %llu collected, %llu x 503, breaker "
              "opens %llu\n",
              static_cast<unsigned long long>(delivery.requests),
              delivery.wall_seconds,
              static_cast<unsigned long long>(delivery.delivered_keys),
              static_cast<unsigned long long>(delivery.delivered_bits),
              static_cast<unsigned long long>(delivery.collected_keys),
              static_cast<unsigned long long>(delivery.unavailable_503),
              static_cast<unsigned long long>(delivery.breaker_opens));
  gate(delivery.duplicates == 0, "duplicate key UUID delivered");
  gate(delivery.lost_bits == 0, "key-bit conservation violated");
  gate(delivery.mismatched == 0, "master/slave key mismatch");
  gate(delivery.delivered_keys > 0 &&
           delivery.collected_keys == delivery.delivered_keys,
       "delivery starved or slave fell behind");
  gate(delivery.breaker_opens >= 1, "dark link never opened its breaker");
  gate(delivery.breaker_detail_ok,
       "starved 503 did not name the open breaker + retry hint");

  if (!gate_ok) {
    std::fprintf(stderr, "\nchaos gate FAILED:\n%s", gate_log.c_str());
  } else {
    std::printf("\nall chaos gates OK\n");
  }

  std::printf(
      "\n{\"bench\":\"chaos\",\"unit\":\"secret_bits\",\"gate_ok\":%s,"
      "\"clean_secret_bits\":%llu,\"chaotic_secret_bits\":%llu,"
      "\"goodput_ratio\":%.3f,\"identical_bytes\":%s,\"deterministic\":%s,"
      "\"retransmits\":%llu,\"faults_injected\":%llu,"
      "\"delivery\":{\"requests\":%llu,\"delivered_keys\":%llu,"
      "\"delivered_bits\":%llu,\"unavailable_503\":%llu,"
      "\"duplicate_ids\":%llu,\"lost_bits\":%llu,\"breaker_opens\":%llu,"
      "\"wall_seconds\":%.3f}}\n",
      gate_ok ? "true" : "false",
      static_cast<unsigned long long>(clean.secret_bits),
      static_cast<unsigned long long>(chaotic.secret_bits), goodput_ratio,
      identical_bytes ? "true" : "false", deterministic ? "true" : "false",
      static_cast<unsigned long long>(chaotic.retransmits),
      static_cast<unsigned long long>(chaotic.faults_injected),
      static_cast<unsigned long long>(delivery.requests),
      static_cast<unsigned long long>(delivery.delivered_keys),
      static_cast<unsigned long long>(delivery.delivered_bits),
      static_cast<unsigned long long>(delivery.unavailable_503),
      static_cast<unsigned long long>(delivery.duplicates),
      static_cast<unsigned long long>(delivery.lost_bits),
      static_cast<unsigned long long>(delivery.breaker_opens),
      delivery.wall_seconds);
  return gate_ok ? 0 : 1;
}
