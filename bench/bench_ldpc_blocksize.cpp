// Experiment F3 - LDPC throughput & FER vs block length, with and without
// batching. Expected shape: longer blocks improve both decoder throughput
// (amortized control overhead) and FER (steeper waterfall); on gpu-sim,
// batching recovers the launch/transfer overhead that dominates small
// blocks - the crossover the batch column makes visible.
#include <cstdio>
#include <deque>

#include "bench_util.hpp"
#include "hetero/kernels.hpp"
#include "reconcile/rate_adapt.hpp"

int main() {
  using namespace qkdpp;
  using benchutil::DecodeInstance;

  ThreadPool pool(2);
  std::deque<hetero::Device> devices;
  devices.emplace_back(hetero::cpu_parallel_props(pool.thread_count()), &pool);
  devices.emplace_back(hetero::gpu_sim_props(), &pool);

  const double q = 0.03;
  std::printf("F3: throughput (Mbit/s) and FER vs block length at QBER "
              "%.0f%%, rate-0.5 codes\n\n",
              q * 100);
  std::printf("%8s %6s | %12s | %14s %14s | %8s\n", "n", "iters", "cpu-par",
              "gpu-sim b=1", "gpu-sim b=16", "FER");

  for (const std::uint32_t code_id : {0u, 3u, 9u, 16u}) {
    const auto& code = reconcile::code_by_id(code_id);
    Xoshiro256 rng(code_id * 101 + 7);

    const int kBatch = 16;
    std::vector<DecodeInstance> instances;
    std::vector<hetero::DecodeJob> jobs;
    for (int i = 0; i < kBatch; ++i) {
      instances.push_back(benchutil::make_instance(code, q, rng));
    }
    for (const auto& instance : instances) {
      jobs.push_back({&instance.syndrome, &instance.llr});
    }

    reconcile::DecoderConfig config;
    std::vector<reconcile::DecodeResult> results;

    // CPU, whole batch (sequential frames).
    const double cpu_s =
        hetero::timed_ldpc_decode(devices[0], code, jobs, config, results);
    unsigned iterations = 0;
    int failures = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      iterations += results[i].iterations;
      failures +=
          !results[i].converged || !(results[i].word == instances[i].alice);
    }
    iterations /= kBatch;

    // GPU, one frame per launch.
    double gpu_single_s = 0;
    for (const auto& job : jobs) {
      gpu_single_s += hetero::timed_ldpc_decode(
          devices[1], code, std::span(&job, 1), config, results);
    }
    // GPU, batched launch.
    const double gpu_batch_s =
        hetero::timed_ldpc_decode(devices[1], code, jobs, config, results);

    const double bits = static_cast<double>(code.n()) * kBatch;
    std::printf("%8zu %6u | %12.1f | %14.1f %14.1f | %7.3f\n", code.n(),
                iterations, bits / cpu_s / 1e6, bits / gpu_single_s / 1e6,
                bits / gpu_batch_s / 1e6,
                static_cast<double>(failures) / kBatch);
  }
  std::printf("\nshape check: gpu batched >> gpu single at small n (launch "
              "amortization); FER falls with n at fixed rate/QBER.\n");
  return 0;
}
