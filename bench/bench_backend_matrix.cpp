// Experiment T1 - the heterogeneity argument in one table: every pipeline
// stage timed on every device class (CPU columns measured, sim columns
// modeled). Expected shape: stages differ by orders of magnitude in how
// much they gain from acceleration - decode and amplify love the GPU,
// sifting and authentication do not; no single device wins every row,
// which is exactly why the mapper exists.
#include <cstdio>
#include <deque>

#include "bench_util.hpp"
#include "hetero/kernels.hpp"
#include "privacy/toeplitz.hpp"
#include "protocol/sifting.hpp"
#include "sim/bb84.hpp"

int main() {
  using namespace qkdpp;

  ThreadPool pool(2);
  std::deque<hetero::Device> devices;
  devices.emplace_back(hetero::cpu_scalar_props());
  devices.emplace_back(hetero::cpu_parallel_props(pool.thread_count()), &pool);
  devices.emplace_back(hetero::gpu_sim_props(), &pool);
  devices.emplace_back(hetero::fpga_sim_props(), &pool);

  // Workload: one 2^20-pulse block's worth of each stage.
  sim::LinkConfig link;
  link.channel.length_km = 25.0;
  Xoshiro256 rng(77);
  const auto record = sim::Bb84Simulator(link).run(1 << 20, rng);

  const auto& code = reconcile::code_by_id(12);  // 16k rate 0.75
  const double q = 0.025;
  auto instance = benchutil::make_instance(code, q, rng);
  const hetero::DecodeJob job{&instance.syndrome, &instance.llr};

  const std::size_t pa_n = 1 << 18;
  const BitVec pa_input = rng.random_bits(pa_n);
  const BitVec pa_seed = rng.random_bits(pa_n + pa_n / 2 - 1);
  const auto auth_message = pa_input.to_bytes();

  std::printf("T1: stage-on-device seconds per block-equivalent workload\n");
  std::printf("    (cpu columns measured; gpu/fpga columns modeled - see "
              "DESIGN.md)\n\n%16s", "");
  for (const auto& device : devices) std::printf(" %13s", device.name().c_str());
  std::printf("\n");

  // Sifting: CPU-only stage (index math, no accelerator kernel).
  std::printf("%16s", "sift");
  {
    protocol::DetectionReport report;
    report.n_pulses = record.n_pulses;
    report.detected_idx = record.detected_idx;
    report.bob_bases = record.bob_bases;
    const protocol::AliceTransmitLog log{record.alice_bits,
                                         record.alice_bases,
                                         record.alice_class};
    Stopwatch stopwatch;
    const auto sifted = protocol::sift_alice(log, report);
    const double seconds = stopwatch.seconds();
    (void)sifted;
    std::printf(" %13.6f %13s %13s %13s\n", seconds, "-", "-", "-");
  }

  std::printf("%16s", "ldpc-syndrome");
  for (auto& device : devices) {
    std::vector<BitVec> syndromes;
    std::vector<BitVec> words = {instance.alice};
    const double seconds =
        hetero::timed_syndrome(device, code, words, syndromes);
    std::printf(" %13.6f", seconds);
  }
  std::printf("\n");

  std::printf("%16s", "ldpc-decode");
  for (auto& device : devices) {
    std::vector<reconcile::DecodeResult> results;
    const double seconds = hetero::timed_ldpc_decode(
        device, code, std::span(&job, 1), reconcile::DecoderConfig{}, results);
    std::printf(" %13.6f", seconds);
  }
  std::printf("\n");

  std::printf("%16s", "toeplitz-pa");
  for (auto& device : devices) {
    BitVec out;
    const double seconds =
        hetero::timed_toeplitz(device, pa_input, pa_seed, pa_n / 2, out);
    std::printf(" %13.6f", seconds);
  }
  std::printf("\n");

  std::printf("%16s", "poly-auth-tag");
  for (auto& device : devices) {
    U128 tag;
    const double seconds = hetero::timed_poly_tag(device, auth_message, 9, tag);
    std::printf(" %13.6f", seconds);
  }
  std::printf("\n\nshape check: decode/amplify gain 10-100x from "
              "accelerators; auth is microseconds everywhere; sift is pure "
              "bookkeeping.\n");
  return 0;
}
