// Trusted-node relay network throughput: concurrent non-adjacent SAE
// pairs drawing end-to-end key through the full JSON dispatcher while the
// underlying links distill live - then the same workload again with a
// forced mid-run outage on the busiest line span, which the router must
// re-route around.
//
// Topology: 6 nodes, line + mesh chords (9 links), 4 non-adjacent SAE
// pairs = 8 consumer threads over one shared KeyRelay:
//
//   n0 --- n1 --- n2 --- n3 --- n4 --- n5     line: L01 L12 L23 L34 L45
//    \______/ \______/ \______/ \______/      chords: C02 C13 C24 C35
//
//   pairs: n0<->n5, n0<->n3, n1<->n4, n2<->n5 (every route >= 2 hops)
//   outage phase: L23 (the middle line span) dies at block 1 and stays
//   down - all cross-network traffic must fail over to C13/C24.
//
// Self-gating correctness (non-zero exit on violation):
//   * zero duplicate UUIDs across both phases, every slave fetch
//     bit-identical to the master's copy, collected == delivered
//   * zero lost bits end-to-end: per pair, relayed == delivered +
//     residual-buffered; per edge, store draws == relay-consumed +
//     tap-buffered (the OTP chain neither drops nor double-spends)
//   * the outage run still completes delivery via re-route: availability
//     (delivered/requested bits) >= 0.9 x the no-outage run's
//
// The final stdout line is a machine-readable JSON summary (folded into
// BENCH_pipeline.json).
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <future>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/dispatcher.hpp"
#include "api/key_delivery.hpp"
#include "common/stats.hpp"
#include "network/delivery.hpp"
#include "network/topology.hpp"
#include "service/link_orchestrator.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace qkdpp;
using namespace qkdpp::network;

constexpr std::uint64_t kKeySizeBits = 128;
constexpr std::uint64_t kKeysPerRequest = 8;
// Fixed per-pair demand, sized to fit the n2|n3 cut even with L23 down:
// every pair crosses that cut, which banks ~41k bits in the outage run
// (C13 + C24 + one block of L23) against 4 x 64 x 128 = 32.8k demanded.
constexpr std::uint64_t kTargetKeysPerPair = 64;
constexpr std::uint64_t kBlocksPerLink = 3;

struct Span {
  const char* name;
  const char* node_a;
  const char* node_b;
  double km;
};

constexpr Span kSpans[] = {
    {"L01", "n0", "n1", 5.0},  {"L12", "n1", "n2", 6.0},
    {"L23", "n2", "n3", 7.0},  {"L34", "n3", "n4", 6.5},
    {"L45", "n4", "n5", 5.5},  {"C02", "n0", "n2", 9.0},
    {"C13", "n1", "n3", 9.5},  {"C24", "n2", "n4", 10.0},
    {"C35", "n3", "n5", 9.25},
};

struct PairPlan {
  std::string master;
  std::string slave;
  const char* src;
  const char* dst;
};

struct Handoff {
  std::mutex mutex;
  std::condition_variable ready;
  std::deque<api::DeliveredKey> queue;
  bool master_done = false;
};

struct PairOutcome {
  std::uint64_t requests = 0;
  std::uint64_t delivered_keys = 0;
  std::uint64_t delivered_bits = 0;
  std::uint64_t collected_keys = 0;
  std::uint64_t mismatched_keys = 0;
  std::vector<std::string> ids;
};

void run_master(api::Dispatcher& dispatcher, const PairPlan& plan,
                const std::atomic<bool>& distillation_done, Handoff& handoff,
                PairOutcome& outcome) {
  while (outcome.delivered_keys < kTargetKeysPerPair) {
    api::KeyRequest key_request;
    key_request.number = std::min<std::uint64_t>(
        kKeysPerRequest, kTargetKeysPerPair - outcome.delivered_keys);
    key_request.size = kKeySizeBits;
    const api::Request request{"POST",
                               "/api/v1/keys/" + plan.slave + "/enc_keys",
                               plan.master, key_request.to_json()};
    const std::string wire_response =
        dispatcher.dispatch(request.to_json().dump());
    ++outcome.requests;
    const auto response =
        api::Response::from_json(api::Json::parse(wire_response));
    if (response.ok()) {
      auto container = api::KeyContainer::from_json(response.body);
      std::scoped_lock lock(handoff.mutex);
      for (auto& key : container.keys) {
        ++outcome.delivered_keys;
        outcome.delivered_bits += kKeySizeBits;
        outcome.ids.push_back(key.key_id);
        handoff.queue.push_back(std::move(key));
      }
      handoff.ready.notify_one();
      continue;
    }
    if (response.status != api::kStatusUnavailable) {
      std::fprintf(stderr, "master %s: unexpected status %d\n",
                   plan.master.c_str(), response.status);
      break;
    }
    // 503 while links still distill: back off and retry. After the last
    // deposit, a 503 means the network (on feasible routes) is dry.
    if (distillation_done.load(std::memory_order_acquire)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::scoped_lock lock(handoff.mutex);
  handoff.master_done = true;
  handoff.ready.notify_one();
}

void run_slave(api::Dispatcher& dispatcher, const PairPlan& plan,
               Handoff& handoff, PairOutcome& outcome) {
  while (true) {
    std::vector<api::DeliveredKey> batch;
    {
      std::unique_lock lock(handoff.mutex);
      handoff.ready.wait(lock, [&] {
        return !handoff.queue.empty() || handoff.master_done;
      });
      while (!handoff.queue.empty() && batch.size() < kKeysPerRequest) {
        batch.push_back(std::move(handoff.queue.front()));
        handoff.queue.pop_front();
      }
      if (batch.empty() && handoff.master_done) return;
    }
    if (batch.empty()) continue;

    api::KeyIdsRequest ids_request;
    for (const auto& key : batch) ids_request.key_ids.push_back(key.key_id);
    const api::Request request{"POST",
                               "/api/v1/keys/" + plan.master + "/dec_keys",
                               plan.slave, ids_request.to_json()};
    const std::string wire_response =
        dispatcher.dispatch(request.to_json().dump());
    ++outcome.requests;
    const auto response =
        api::Response::from_json(api::Json::parse(wire_response));
    if (!response.ok()) {
      outcome.mismatched_keys += batch.size();
      continue;
    }
    const auto container = api::KeyContainer::from_json(response.body);
    for (std::size_t i = 0; i < container.keys.size(); ++i) {
      ++outcome.collected_keys;
      if (container.keys[i] != batch[i]) ++outcome.mismatched_keys;
    }
  }
}

struct PhaseResult {
  std::uint64_t requests = 0;
  std::uint64_t delivered_bits = 0;
  std::uint64_t collected_keys = 0;
  std::uint64_t delivered_keys = 0;
  std::uint64_t mismatched = 0;
  std::uint64_t lost_bits = 0;
  std::uint64_t reroutes = 0;
  std::uint64_t secret_bits = 0;  ///< distilled under the phase
  double wall_seconds = 0.0;
  double availability = 0.0;
};

/// One full workload phase: 9 links distill live while 4 relayed pairs
/// pull their fixed demand through the dispatcher.
PhaseResult run_phase(bool with_outage, std::uint64_t uuid_seed,
                      std::set<std::string>& all_ids,
                      std::uint64_t& duplicates) {
  service::OrchestratorConfig config;
  config.store.capacity_bits = 1 << 22;
  std::uint64_t seed = 41;
  for (const Span& span : kSpans) {
    service::LinkSpec spec;
    spec.name = span.name;
    spec.link.channel.length_km = span.km;
    spec.pulses_per_block = sim::pulses_for_sifted_target(
        spec.link, 30000.0, std::size_t{1} << 19, std::size_t{1} << 23);
    spec.blocks = kBlocksPerLink;
    spec.rng_seed = seed++;
    config.links.push_back(std::move(spec));
  }
  if (with_outage) {
    // The middle line span dies after its first block and never recovers:
    // the router sees the abort streak and all cross-network demand must
    // fail over to the C13/C24 chords.
    sim::Perturbation outage;
    outage.kind = sim::PerturbationKind::kLinkOutage;
    outage.begin_block = 1;
    outage.end_block = kBlocksPerLink;
    config.links[2].schedule.perturbations.push_back(outage);
  }
  service::LinkOrchestrator orchestrator(std::move(config));

  Topology topology(orchestrator);
  for (const char* node : {"n0", "n1", "n2", "n3", "n4", "n5"}) {
    topology.add_node(node);
  }
  for (const Span& span : kSpans) {
    topology.add_edge(span.node_a, span.node_b, span.name);
  }

  api::KeyDeliveryConfig service_config;
  service_config.uuid_seed = uuid_seed;  // one KME identity per phase
  api::KeyDeliveryService service(orchestrator, service_config);
  NetworkDelivery delivery(topology, service);

  std::vector<PairPlan> plans = {
      {"sae-m0", "sae-s0", "n0", "n5"},
      {"sae-m1", "sae-s1", "n0", "n3"},
      {"sae-m2", "sae-s2", "n1", "n4"},
      {"sae-m3", "sae-s3", "n2", "n5"},
  };
  for (const PairPlan& plan : plans) {
    api::SaePair pair;
    pair.master_sae_id = plan.master;
    pair.slave_sae_id = plan.slave;
    pair.default_key_size = kKeySizeBits;
    pair.max_key_per_request = kKeysPerRequest;
    RelaySourceConfig source_config;
    source_config.chunk_bits = 1024;
    delivery.register_pair(pair, plan.src, plan.dst, source_config);
  }
  api::Dispatcher dispatcher(service);

  std::atomic<bool> distillation_done{false};
  std::deque<Handoff> handoffs(plans.size());
  std::vector<PairOutcome> master_outcomes(plans.size());
  std::vector<PairOutcome> slave_outcomes(plans.size());

  Stopwatch clock;
  auto distillation = std::async(std::launch::async, [&] {
    const auto report = orchestrator.run();
    distillation_done.store(true, std::memory_order_release);
    return report;
  });
  std::vector<std::thread> consumers;
  consumers.reserve(plans.size() * 2);
  for (std::size_t i = 0; i < plans.size(); ++i) {
    consumers.emplace_back([&, i] {
      run_master(dispatcher, plans[i], distillation_done, handoffs[i],
                 master_outcomes[i]);
    });
    consumers.emplace_back([&, i] {
      run_slave(dispatcher, plans[i], handoffs[i], slave_outcomes[i]);
    });
  }
  const auto report = distillation.get();
  for (auto& thread : consumers) thread.join();

  PhaseResult result;
  result.wall_seconds = clock.seconds();
  result.secret_bits = report.secret_bits;
  for (std::size_t i = 0; i < plans.size(); ++i) {
    result.requests += master_outcomes[i].requests + slave_outcomes[i].requests;
    result.delivered_keys += master_outcomes[i].delivered_keys;
    result.delivered_bits += master_outcomes[i].delivered_bits;
    result.collected_keys += slave_outcomes[i].collected_keys;
    result.mismatched += slave_outcomes[i].mismatched_keys;
    for (const auto& id : master_outcomes[i].ids) {
      if (!all_ids.insert(id).second) ++duplicates;
    }
  }
  result.availability =
      static_cast<double>(result.delivered_bits) /
      static_cast<double>(plans.size() * kTargetKeysPerPair * kKeySizeBits);

  // End-to-end conservation. Pair level: everything the relay produced for
  // a pair is delivered or waiting in its residual. Edge level: everything
  // the relay drew from a span's store is inside a delivered e2e key or
  // buffered in that span's tap.
  std::uint64_t relayed_total = 0;
  for (const PairPlan& plan : plans) {
    const auto source = delivery.source(plan.master, plan.slave);
    const auto stats = source->stats();
    result.reroutes += stats.reroutes;
    relayed_total += stats.relayed_bits;
    const auto pair_stats = *service.pair_stats(plan.master, plan.slave);
    const std::uint64_t accounted =
        pair_stats.delivered_bits + pair_stats.buffered_bits;
    if (accounted != stats.relayed_bits) {
      result.lost_bits += accounted > stats.relayed_bits
                              ? accounted - stats.relayed_bits
                              : stats.relayed_bits - accounted;
      std::fprintf(stderr, "pair conservation violated on %s\n",
                   plan.master.c_str());
    }
  }
  std::printf("\n  %-4s | %9s %9s %9s %9s\n", "span", "deposited", "drawn",
              "consumed", "buffered");
  for (std::size_t e = 0; e < topology.edge_count(); ++e) {
    const auto& store = orchestrator.key_store(topology.edge(e).link);
    const std::uint64_t drawn =
        store.consumed_by(delivery.relay().consumer_name(e));
    const std::uint64_t consumed = delivery.relay().consumed_bits(e);
    const std::uint64_t buffered = delivery.relay().buffered_bits(e);
    if (drawn != consumed + buffered) {
      result.lost_bits += drawn > consumed + buffered
                              ? drawn - consumed - buffered
                              : consumed + buffered - drawn;
      std::fprintf(stderr, "edge conservation violated on %s\n",
                   topology.edge(e).link_name.c_str());
    }
    std::printf("  %-4s | %9llu %9llu %9llu %9llu\n",
                topology.edge(e).link_name.c_str(),
                static_cast<unsigned long long>(store.total_deposited_bits()),
                static_cast<unsigned long long>(drawn),
                static_cast<unsigned long long>(consumed),
                static_cast<unsigned long long>(buffered));
  }
  if (delivery.relay().delivered_bits() != relayed_total) {
    result.lost_bits += 1;  // relay/source totals must agree exactly
    std::fprintf(stderr, "relay total != sum of source totals\n");
  }
  return result;
}

}  // namespace

int main() {
  std::printf("network: 6 nodes / %zu links (line + chords), 4 non-adjacent "
              "SAE pairs, %llu-bit keys, %llu keys/pair demand, JSON "
              "dispatch, live distillation\n",
              std::size(kSpans),
              static_cast<unsigned long long>(kKeySizeBits),
              static_cast<unsigned long long>(kTargetKeysPerPair));

  std::set<std::string> all_ids;
  std::uint64_t duplicates = 0;

  std::printf("\n== phase 1: clean network ==\n");
  const PhaseResult clean = run_phase(false, 0x6e01, all_ids, duplicates);
  std::printf("  %llu/%llu keys delivered (availability %.3f), %llu "
              "reroutes, %.2f s\n",
              static_cast<unsigned long long>(clean.delivered_keys),
              static_cast<unsigned long long>(4 * kTargetKeysPerPair),
              clean.availability,
              static_cast<unsigned long long>(clean.reroutes),
              clean.wall_seconds);

  std::printf("\n== phase 2: L23 hard outage from block 1 ==\n");
  const PhaseResult outage = run_phase(true, 0x6e02, all_ids, duplicates);
  std::printf("  %llu/%llu keys delivered (availability %.3f), %llu "
              "reroutes, %.2f s\n",
              static_cast<unsigned long long>(outage.delivered_keys),
              static_cast<unsigned long long>(4 * kTargetKeysPerPair),
              outage.availability,
              static_cast<unsigned long long>(outage.reroutes),
              outage.wall_seconds);

  const double ratio =
      clean.availability > 0 ? outage.availability / clean.availability : 0.0;
  const std::uint64_t mismatched = clean.mismatched + outage.mismatched;
  const std::uint64_t lost_bits = clean.lost_bits + outage.lost_bits;
  const bool collected_ok =
      clean.collected_keys == clean.delivered_keys &&
      outage.collected_keys == outage.delivered_keys;
  const bool gate_ok = duplicates == 0 && lost_bits == 0 && mismatched == 0 &&
                       collected_ok && clean.delivered_keys > 0 &&
                       outage.delivered_keys > 0 && ratio >= 0.9;

  std::printf("\ngates: duplicate_ids=%llu lost_bits=%llu mismatched=%llu "
              "availability_ratio=%.3f (>= 0.9) -> %s\n\n",
              static_cast<unsigned long long>(duplicates),
              static_cast<unsigned long long>(lost_bits),
              static_cast<unsigned long long>(mismatched), ratio,
              gate_ok ? "OK" : "FAILED");

  const double wall = clean.wall_seconds + outage.wall_seconds;
  std::printf(
      "{\"bench\":\"network\",\"unit\":\"delivered_bits_per_s\","
      "\"nodes\":6,\"edges\":%zu,\"pairs\":4,"
      "\"requested_bits\":%llu,\"delivered_bits_clean\":%llu,"
      "\"delivered_bits_outage\":%llu,\"availability_clean\":%.4f,"
      "\"availability_outage\":%.4f,\"availability_ratio\":%.4f,"
      "\"reroutes_clean\":%llu,\"reroutes_outage\":%llu,"
      "\"requests\":%llu,\"wall_seconds\":%.3f,"
      "\"delivered_bits_per_s\":%.1f,\"duplicate_ids\":%llu,"
      "\"lost_bits\":%llu,\"gate_ok\":%s}\n",
      std::size(kSpans),
      static_cast<unsigned long long>(2 * 4 * kTargetKeysPerPair *
                                      kKeySizeBits),
      static_cast<unsigned long long>(clean.delivered_bits),
      static_cast<unsigned long long>(outage.delivered_bits),
      clean.availability, outage.availability, ratio,
      static_cast<unsigned long long>(clean.reroutes),
      static_cast<unsigned long long>(outage.reroutes),
      static_cast<unsigned long long>(clean.requests + outage.requests), wall,
      (clean.delivered_bits + outage.delivered_bits) / wall,
      static_cast<unsigned long long>(duplicates),
      static_cast<unsigned long long>(lost_bits), gate_ok ? "true" : "false");
  return gate_ok ? 0 : 1;
}
